//! `mqpi-wal` — append-only, CRC-framed, group-committed write-ahead log.
//!
//! The PI service (`mqpi-pi`) is a deterministic state machine over a small
//! command vocabulary (submit/subscribe/abort/reweight/refine/set-rate/
//! advance/pump). This crate makes that vocabulary durable: every command
//! is appended as a [`WalRecord`] before it is applied, so a crash loses at
//! most the unflushed tail of the log, and replaying the surviving prefix
//! on top of the latest base snapshot reproduces the service state — and
//! therefore its push streams — *bit-identically*.
//!
//! # On-disk layout
//!
//! A log directory holds two file families, both named by record sequence
//! number so recovery can order them without reading a manifest:
//!
//! * `wal-<first_seq:016x>.seg` — a segment: a 16-byte header (`MQWL`
//!   magic, format version, first sequence number) followed by frames.
//!   Each frame is `len:u32 | flags:u8 | seq:u64 | payload | crc:u32`,
//!   little-endian, with the CRC-32 (same polynomial as `mqpi-ckpt`)
//!   covering everything before it. Payloads are [`WalRecord`]s encoded
//!   with the `ckpt` [`Enc`]/[`Dec`] codec.
//! * `base-<through_seq:016x>.ckpt` — a compaction anchor: a standard
//!   `ckpt` container (kind [`BASE_KIND`]) whose payload is the sequence
//!   number the snapshot covers plus the owner's own checkpoint bytes.
//!   Records with `seq <= through_seq` are logically dead once the base
//!   exists.
//!
//! # Group commit
//!
//! Appends buffer in memory. A *commit* marks the most recent frame with
//! [`FLAG_COMMIT`], declaring every frame since the previous commit part of
//! one atomic batch; recovery never surfaces a torn batch — it scans to the
//! last valid committed frame and truncates everything after it (the
//! `wal.recovered_tail` event). Durability is batched separately: the
//! buffer is written and fsynced when `flush_every_n` records have
//! accumulated or `flush_every_vt` virtual seconds have passed since the
//! last flush ([`WalKnobs`]), so the fsync cost amortizes across commits
//! exactly like group commit in a DBMS log manager.
//!
//! # Compaction
//!
//! [`Wal::compact`] writes the owner's checkpoint as a new base anchored at
//! the current flushed sequence, rotates to a fresh segment, and only then
//! retires the segments and bases the new anchor supersedes. Every step is
//! individually atomic+durable (`ckpt::atomic_write` semantics), and
//! [`Wal::open`] finishes an interrupted retirement, so a crash at any
//! point leaves a recoverable directory.

use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use mqpi_ckpt::{crc32, sweep_stale_tmp, sync_dir, CkptError, Dec, Enc, Result};
use mqpi_obs::{Obs, TraceKind};

/// First four bytes of every segment file.
pub const SEGMENT_MAGIC: &[u8; 4] = b"MQWL";

/// Version stamp of the segment layout and record schema. Bump on any
/// wire-format change; readers reject segments from other versions.
pub const SEGMENT_VERSION: u32 = 1;

/// Container kind of a base (compaction-anchor) snapshot file.
pub const BASE_KIND: &str = "wal-base";

/// Frame flag bit: this frame ends a commit batch. Every frame before it
/// (back to the previous committed frame) is part of the batch.
pub const FLAG_COMMIT: u8 = 0b0000_0001;

/// Sanity cap on a single record payload; anything larger is treated as
/// corruption rather than an allocation request.
pub const MAX_RECORD_LEN: usize = 1 << 26;

const SEGMENT_HEADER_LEN: usize = 4 + 4 + 8;
const FRAME_HEADER_LEN: usize = 4 + 1 + 8;
const FRAME_TRAILER_LEN: usize = 4;
const KNOWN_FLAGS: u8 = FLAG_COMMIT;

// ---------------------------------------------------------------------------
// records
// ---------------------------------------------------------------------------

/// One logged PI-service event. The variants mirror the service's mutating
/// API one-to-one (plus [`WalRecord::Mark`] for application-level progress
/// and [`WalRecord::SimEvent`] for journaled simulator feed taps), so a log
/// is exactly a serialized command history and replaying it is exactly
/// re-invoking the API.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `PiService::register_session` (the assigned id is deterministic).
    RegisterSession,
    /// `PiService::close_session`.
    CloseSession {
        /// Session being closed.
        session: u64,
    },
    /// `PiService::submit` with the caller's *raw* (unsanitized) inputs,
    /// so replay repeats the sanitization decisions too.
    Submit {
        /// Owning session.
        session: u64,
        /// Raw cost argument (bit-preserved, may be non-finite).
        cost: f64,
        /// Raw weight argument.
        weight: f64,
    },
    /// `PiService::subscribe`.
    Subscribe {
        /// Subscribing session.
        session: u64,
        /// Query subscribed to.
        query: u64,
    },
    /// `PiService::abort`.
    Abort {
        /// Query aborted.
        query: u64,
    },
    /// `PiService::reweight`.
    Reweight {
        /// Query whose weight changes.
        query: u64,
        /// Raw new weight.
        weight: f64,
    },
    /// `PiService::refine_cost`.
    Refine {
        /// Query whose remaining cost is revised.
        query: u64,
        /// Raw new remaining cost.
        cost: f64,
    },
    /// `PiService::set_rate`.
    SetRate {
        /// New aggregate processing rate.
        rate: f64,
    },
    /// `PiService::advance`.
    Advance {
        /// Raw virtual-time step.
        dt: f64,
    },
    /// `PiService::pump` (drains pushes; logged so replay regenerates the
    /// identical push stream, not just the identical end state).
    Pump,
    /// Application progress marker: an opaque `(iter, digest)` pair a
    /// driver loop writes once per iteration so recovery can resume the
    /// loop where the log ends.
    Mark {
        /// Driver-defined position (e.g. loop iteration).
        iter: u64,
        /// Driver-defined accumulator (e.g. a push-stream digest).
        digest: u64,
    },
    /// Opaque driver payload (e.g. a campaign loop's own state blob),
    /// journaled alongside the service commands so driver and service
    /// recover from a single consistent frontier. Replay ignores it; the
    /// newest one is surfaced to the recovering driver.
    Note {
        /// Driver-defined bytes (bit-preserved).
        bytes: Vec<u8>,
    },
    /// A journaled simulator feed event (mirror tap): a compact generic
    /// shape — variant tag plus the numeric fields the mirror needs.
    SimEvent {
        /// Mirror-defined variant tag.
        tag: u8,
        /// Event virtual time.
        at: f64,
        /// Query id (0 when the variant has none).
        id: u64,
        /// First numeric field (variant-defined, bit-preserved).
        a: f64,
        /// Second numeric field (variant-defined, bit-preserved).
        b: f64,
    },
}

const TAG_REGISTER: u8 = 1;
const TAG_CLOSE: u8 = 2;
const TAG_SUBMIT: u8 = 3;
const TAG_SUBSCRIBE: u8 = 4;
const TAG_ABORT: u8 = 5;
const TAG_REWEIGHT: u8 = 6;
const TAG_REFINE: u8 = 7;
const TAG_SET_RATE: u8 = 8;
const TAG_ADVANCE: u8 = 9;
const TAG_PUMP: u8 = 10;
const TAG_MARK: u8 = 11;
const TAG_SIM_EVENT: u8 = 12;
const TAG_NOTE: u8 = 13;

impl WalRecord {
    /// Append this record's payload encoding to `e`.
    pub fn encode(&self, e: &mut Enc) {
        match *self {
            WalRecord::RegisterSession => e.put_u8(TAG_REGISTER),
            WalRecord::CloseSession { session } => {
                e.put_u8(TAG_CLOSE);
                e.put_u64(session);
            }
            WalRecord::Submit {
                session,
                cost,
                weight,
            } => {
                e.put_u8(TAG_SUBMIT);
                e.put_u64(session);
                e.put_f64(cost);
                e.put_f64(weight);
            }
            WalRecord::Subscribe { session, query } => {
                e.put_u8(TAG_SUBSCRIBE);
                e.put_u64(session);
                e.put_u64(query);
            }
            WalRecord::Abort { query } => {
                e.put_u8(TAG_ABORT);
                e.put_u64(query);
            }
            WalRecord::Reweight { query, weight } => {
                e.put_u8(TAG_REWEIGHT);
                e.put_u64(query);
                e.put_f64(weight);
            }
            WalRecord::Refine { query, cost } => {
                e.put_u8(TAG_REFINE);
                e.put_u64(query);
                e.put_f64(cost);
            }
            WalRecord::SetRate { rate } => {
                e.put_u8(TAG_SET_RATE);
                e.put_f64(rate);
            }
            WalRecord::Advance { dt } => {
                e.put_u8(TAG_ADVANCE);
                e.put_f64(dt);
            }
            WalRecord::Pump => e.put_u8(TAG_PUMP),
            WalRecord::Mark { iter, digest } => {
                e.put_u8(TAG_MARK);
                e.put_u64(iter);
                e.put_u64(digest);
            }
            WalRecord::Note { ref bytes } => {
                e.put_u8(TAG_NOTE);
                e.put_bytes(bytes);
            }
            WalRecord::SimEvent { tag, at, id, a, b } => {
                e.put_u8(TAG_SIM_EVENT);
                e.put_u8(tag);
                e.put_f64(at);
                e.put_u64(id);
                e.put_f64(a);
                e.put_f64(b);
            }
        }
    }

    /// Decode one record, rejecting unknown tags and trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut d = Dec::new(payload);
        let rec = match d.get_u8()? {
            TAG_REGISTER => WalRecord::RegisterSession,
            TAG_CLOSE => WalRecord::CloseSession {
                session: d.get_u64()?,
            },
            TAG_SUBMIT => WalRecord::Submit {
                session: d.get_u64()?,
                cost: d.get_f64()?,
                weight: d.get_f64()?,
            },
            TAG_SUBSCRIBE => WalRecord::Subscribe {
                session: d.get_u64()?,
                query: d.get_u64()?,
            },
            TAG_ABORT => WalRecord::Abort {
                query: d.get_u64()?,
            },
            TAG_REWEIGHT => WalRecord::Reweight {
                query: d.get_u64()?,
                weight: d.get_f64()?,
            },
            TAG_REFINE => WalRecord::Refine {
                query: d.get_u64()?,
                cost: d.get_f64()?,
            },
            TAG_SET_RATE => WalRecord::SetRate { rate: d.get_f64()? },
            TAG_ADVANCE => WalRecord::Advance { dt: d.get_f64()? },
            TAG_PUMP => WalRecord::Pump,
            TAG_MARK => WalRecord::Mark {
                iter: d.get_u64()?,
                digest: d.get_u64()?,
            },
            TAG_NOTE => WalRecord::Note {
                bytes: d.get_bytes()?,
            },
            TAG_SIM_EVENT => WalRecord::SimEvent {
                tag: d.get_u8()?,
                at: d.get_f64()?,
                id: d.get_u64()?,
                a: d.get_f64()?,
                b: d.get_f64()?,
            },
            t => return Err(CkptError::Corrupt(format!("wal record tag {t}"))),
        };
        if !d.is_exhausted() {
            return Err(CkptError::Corrupt(format!(
                "{} trailing bytes after wal record",
                d.remaining()
            )));
        }
        Ok(rec)
    }
}

// ---------------------------------------------------------------------------
// knobs
// ---------------------------------------------------------------------------

/// Group-commit and compaction policy. `Copy` + serde so it can ride inside
/// `PiConfig` and inside service checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WalKnobs {
    /// Flush (write + fsync) once this many records are buffered at a
    /// commit point. `1` = flush every commit (RPO 0 for committed data).
    pub flush_every_n: u32,
    /// Also flush when this much virtual time has passed since the last
    /// flush, so a quiet service still bounds its replay window.
    pub flush_every_vt: f64,
    /// Compact (snapshot + retire segments) once this many records have
    /// accumulated since the current base. `0` disables automatic
    /// compaction; [`Wal::compact`] can still be invoked explicitly.
    pub compact_every: u64,
}

impl Default for WalKnobs {
    fn default() -> Self {
        WalKnobs {
            flush_every_n: 64,
            flush_every_vt: 0.25,
            compact_every: 0,
        }
    }
}

impl WalKnobs {
    /// Check the policy is sane; returns a stable reason string otherwise.
    pub fn validate(&self) -> std::result::Result<(), &'static str> {
        if self.flush_every_n == 0 {
            return Err("flush_every_n must be >= 1");
        }
        if !self.flush_every_vt.is_finite() || self.flush_every_vt <= 0.0 {
            return Err("flush_every_vt must be finite and > 0");
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// recovery scan
// ---------------------------------------------------------------------------

/// What [`Wal::open`] (or the read-only [`Wal::peek`]) found in a log
/// directory.
#[derive(Debug)]
pub struct WalRecovered {
    /// Owner checkpoint bytes from the newest decodable base snapshot.
    pub base: Option<Vec<u8>>,
    /// Sequence number the base covers (0 when `base` is `None`).
    pub base_through: u64,
    /// Committed records after the base, in sequence order.
    pub records: Vec<(u64, WalRecord)>,
    /// Bytes discarded recovering the tail: torn/corrupt frames plus
    /// committed-but-orphaned data after a mid-log corruption, plus whole
    /// unreachable segments. 0 on a clean open.
    pub truncated_bytes: u64,
    /// Stale `*.tmp` staging files swept at open.
    pub swept_tmp: usize,
    /// Whether any prior log state existed (false = fresh directory).
    pub resumed: bool,
}

impl WalRecovered {
    /// The newest [`WalRecord::Mark`] in the recovered suffix, if any.
    pub fn last_mark(&self) -> Option<(u64, u64)> {
        self.records.iter().rev().find_map(|(_, r)| match *r {
            WalRecord::Mark { iter, digest } => Some((iter, digest)),
            _ => None,
        })
    }
}

struct ScanOutcome {
    base: Option<Vec<u8>>,
    base_through: u64,
    records: Vec<(u64, WalRecord)>,
    last_committed_seq: u64,
    /// Segment holding the last committed frame, its surviving byte length,
    /// and its header first-seq. `None` when no segment survives.
    keep: Option<(PathBuf, u64, u64)>,
    /// Segments to delete: retired-but-not-removed ones before the live
    /// window, and everything after the committed cut.
    drop_segments: Vec<PathBuf>,
    /// Base files superseded by the chosen base.
    drop_bases: Vec<PathBuf>,
    truncated_bytes: u64,
    any_state: bool,
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let hex = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn segment_name(first: u64) -> String {
    format!("wal-{first:016x}.seg")
}

fn base_name(through: u64) -> String {
    format!("base-{through:016x}.ckpt")
}

/// `(sequence number from the filename, path)` for one log file.
type NumberedFile = (u64, PathBuf);

fn list_dir(dir: &Path) -> Result<(Vec<NumberedFile>, Vec<NumberedFile>)> {
    let mut bases = Vec::new();
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(through) = parse_numbered(name, "base-", ".ckpt") {
            bases.push((through, entry.path()));
        } else if let Some(first) = parse_numbered(name, "wal-", ".seg") {
            segs.push((first, entry.path()));
        }
    }
    bases.sort_by_key(|&(n, _)| n);
    segs.sort_by_key(|&(n, _)| n);
    Ok((bases, segs))
}

/// Scan a log directory without mutating it. Shared by [`Wal::open`]
/// (which then applies the truncation/retirement the scan prescribes) and
/// [`Wal::peek`] (standby tailing: the primary still owns the files).
fn scan(dir: &Path) -> Result<ScanOutcome> {
    let (bases, segs) = list_dir(dir)?;
    let any_state = !bases.is_empty() || !segs.is_empty();

    // Newest decodable base wins; older and undecodable ones are retired.
    let mut base: Option<Vec<u8>> = None;
    let mut base_through = 0u64;
    let mut drop_bases = Vec::new();
    for &(through, ref path) in bases.iter().rev() {
        if base.is_some() {
            drop_bases.push(path.clone());
            continue;
        }
        match mqpi_ckpt::read_file(path, BASE_KIND).and_then(|payload| {
            let mut d = Dec::new(&payload);
            let seq = d.get_u64()?;
            let bytes = d.get_bytes()?;
            if !d.is_exhausted() {
                return Err(CkptError::Corrupt("trailing bytes after wal base".into()));
            }
            Ok((seq, bytes))
        }) {
            Ok((seq, bytes)) if seq == through => {
                base = Some(bytes);
                base_through = through;
            }
            // A damaged or mislabeled base is skipped, not fatal: an older
            // base plus a longer replay reaches the same state.
            _ => drop_bases.push(path.clone()),
        }
    }

    // The live window starts at the last segment that could contain
    // base_through + 1; anything earlier is fully covered by the base and
    // is a retired segment an interrupted compaction failed to delete.
    let next_needed = base_through + 1;
    let start_idx = segs.iter().rposition(|&(first, _)| first <= next_needed);
    let mut drop_segments: Vec<PathBuf> = Vec::new();
    let mut truncated_bytes = 0u64;
    let mut records = Vec::new();
    let mut last_committed_seq = base_through;

    let Some(scan_from) = start_idx else {
        // No segment reaches back to the base: any later segments sit
        // across a gap we cannot replay, so they are unusable.
        for (_, p) in &segs {
            truncated_bytes += fs::metadata(p).map(|m| m.len()).unwrap_or(0);
            drop_segments.push(p.clone());
        }
        return Ok(ScanOutcome {
            base,
            base_through,
            records,
            last_committed_seq,
            keep: None,
            drop_segments,
            drop_bases,
            truncated_bytes,
            any_state,
        });
    };
    for (_, p) in &segs[..scan_from] {
        drop_segments.push(p.clone());
    }

    // Walk the chain, frame by frame. `keep` tracks the segment holding
    // the newest committed frame and the byte length that survives in it;
    // a commit batch may span segments (its earlier members live in fully
    // kept predecessors), so `pending` is never reset at a segment edge.
    let mut chain: Vec<(PathBuf, u64)> = Vec::new();
    let mut keep: Option<(usize, PathBuf, u64, u64)> = None;
    let mut pending: Vec<(u64, WalRecord)> = Vec::new();
    let mut expected_seq: Option<u64> = None;
    let mut cut = false;
    for &(first, ref path) in &segs[scan_from..] {
        if cut {
            chain.push((
                path.clone(),
                fs::metadata(path).map(|m| m.len()).unwrap_or(0),
            ));
            continue;
        }
        let bytes = fs::read(path)?;
        let idx = chain.len();
        chain.push((path.clone(), bytes.len() as u64));
        let header_ok = bytes.len() >= SEGMENT_HEADER_LEN
            && &bytes[..4] == SEGMENT_MAGIC
            && u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) == SEGMENT_VERSION
            && u64::from_le_bytes([
                bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14],
                bytes[15],
            ]) == first
            && expected_seq.is_none_or(|e| e == first);
        if !header_ok {
            // Untrustworthy segment: the committed frontier stays wherever
            // the chain so far put it; this file and everything after is
            // dropped.
            cut = true;
            continue;
        }
        if keep.is_none() {
            keep = Some((idx, path.clone(), SEGMENT_HEADER_LEN as u64, first));
        }
        let mut pos = SEGMENT_HEADER_LEN;
        let mut seq = first;
        loop {
            if pos == bytes.len() {
                break;
            }
            let remaining = bytes.len() - pos;
            if remaining < FRAME_HEADER_LEN + FRAME_TRAILER_LEN {
                cut = true;
                break;
            }
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            let flags = bytes[pos + 4];
            let frame_end = pos + FRAME_HEADER_LEN + len + FRAME_TRAILER_LEN;
            if len > MAX_RECORD_LEN || frame_end > bytes.len() {
                cut = true;
                break;
            }
            let body_end = frame_end - FRAME_TRAILER_LEN;
            let stored = u32::from_le_bytes([
                bytes[body_end],
                bytes[body_end + 1],
                bytes[body_end + 2],
                bytes[body_end + 3],
            ]);
            if crc32(&bytes[pos..body_end]) != stored || flags & !KNOWN_FLAGS != 0 {
                cut = true;
                break;
            }
            let frame_seq = u64::from_le_bytes([
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
                bytes[pos + 8],
                bytes[pos + 9],
                bytes[pos + 10],
                bytes[pos + 11],
                bytes[pos + 12],
            ]);
            if frame_seq != seq {
                cut = true;
                break;
            }
            let payload = &bytes[pos + FRAME_HEADER_LEN..body_end];
            let rec = match WalRecord::decode(payload) {
                Ok(r) => r,
                Err(_) => {
                    cut = true;
                    break;
                }
            };
            pending.push((seq, rec));
            if flags & FLAG_COMMIT != 0 {
                for (s, r) in pending.drain(..) {
                    if s > base_through {
                        records.push((s, r));
                    }
                }
                last_committed_seq = seq;
                keep = Some((idx, path.clone(), frame_end as u64, first));
            }
            seq = seq.wrapping_add(1);
            pos = frame_end;
        }
        if !cut {
            expected_seq = Some(seq);
        }
    }

    // Everything after the committed frontier — the kept segment's tail
    // plus every later segment whole — is a torn or uncommitted batch.
    let keep_out = match keep {
        Some((idx, path, keep_len, first)) => {
            truncated_bytes += chain[idx].1.saturating_sub(keep_len);
            for (p, len) in chain.drain(idx + 1..) {
                truncated_bytes += len;
                drop_segments.push(p);
            }
            Some((path, keep_len, first))
        }
        None => {
            for (p, len) in chain.drain(..) {
                truncated_bytes += len;
                drop_segments.push(p);
            }
            None
        }
    };

    Ok(ScanOutcome {
        base,
        base_through,
        records,
        last_committed_seq,
        keep: keep_out,
        drop_segments,
        drop_bases,
        truncated_bytes,
        any_state,
    })
}

// ---------------------------------------------------------------------------
// the log
// ---------------------------------------------------------------------------

/// An open write-ahead log rooted at one directory. See the crate docs for
/// the format and the commit/flush/compaction semantics.
///
/// Dropping a `Wal` deliberately does **not** flush — that is the crash
/// model the recovery path is tested against. Call [`Wal::close`] for a
/// clean shutdown.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    knobs: WalKnobs,
    obs: Obs,
    file: File,
    seg_path: PathBuf,
    seg_first: u64,
    next_seq: u64,
    base_through: u64,
    records_since_base: u64,
    buf: Vec<u8>,
    buf_records: u32,
    last_frame_start: Option<usize>,
    last_flush_vt: f64,
}

fn create_segment(dir: &Path, first: u64) -> Result<(File, PathBuf)> {
    let path = dir.join(segment_name(first));
    let mut f = File::create(&path)?;
    let mut h = [0u8; SEGMENT_HEADER_LEN];
    h[..4].copy_from_slice(SEGMENT_MAGIC);
    h[4..8].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&first.to_le_bytes());
    f.write_all(&h)?;
    f.sync_all()?;
    sync_dir(dir);
    Ok((f, path))
}

impl Wal {
    /// Open (or create) the log in `dir`, recovering whatever survives:
    /// sweep stale temp files, pick the newest decodable base, scan the
    /// segment chain to the last valid committed frame, truncate the torn
    /// or uncommitted tail, and finish any interrupted retirement. Returns
    /// the log positioned for appending plus everything the owner needs to
    /// rebuild state (base bytes + committed record suffix).
    pub fn open(dir: &Path, knobs: WalKnobs, obs: Obs) -> Result<(Wal, WalRecovered)> {
        if let Err(why) = knobs.validate() {
            return Err(CkptError::Unsupported(format!("wal knobs: {why}")));
        }
        fs::create_dir_all(dir)?;
        let swept_tmp = sweep_stale_tmp(dir)?;
        let scan = scan(dir)?;

        for p in &scan.drop_bases {
            let _ = fs::remove_file(p);
        }
        for p in &scan.drop_segments {
            let _ = fs::remove_file(p);
        }
        if !scan.drop_bases.is_empty() || !scan.drop_segments.is_empty() {
            sync_dir(dir);
        }

        let next_seq = scan.last_committed_seq + 1;
        let (file, seg_path, seg_first) = match &scan.keep {
            Some((path, keep_len, first)) => {
                // Append mode: every write lands at the (possibly just
                // truncated) end of the surviving data.
                let f = File::options().read(true).append(true).open(path)?;
                let cur = f.metadata()?.len();
                if cur != *keep_len {
                    f.set_len(*keep_len)?;
                    f.sync_all()?;
                }
                (f, path.clone(), *first)
            }
            None => {
                let (f, p) = create_segment(dir, next_seq)?;
                (f, p, next_seq)
            }
        };

        if scan.truncated_bytes > 0 {
            obs.counter_add("wal.truncated_bytes", scan.truncated_bytes);
            obs.emit(
                0.0,
                TraceKind::Wal {
                    action: "recovered_tail",
                    seq: scan.last_committed_seq,
                    bytes: scan.truncated_bytes,
                },
            );
        }

        let recovered = WalRecovered {
            base: scan.base,
            base_through: scan.base_through,
            records: scan.records,
            truncated_bytes: scan.truncated_bytes,
            swept_tmp,
            resumed: scan.any_state,
        };
        let wal = Wal {
            dir: dir.to_path_buf(),
            knobs,
            obs,
            file,
            seg_path,
            seg_first,
            next_seq,
            base_through: recovered.base_through,
            records_since_base: recovered.records.len() as u64,
            buf: Vec::new(),
            buf_records: 0,
            last_frame_start: None,
            last_flush_vt: 0.0,
        };
        Ok((wal, recovered))
    }

    /// Read-only recovery scan: what a fresh [`Wal::open`] *would* recover,
    /// without touching any file. This is the standby's tailing primitive —
    /// it only ever surfaces flushed, committed data.
    pub fn peek(dir: &Path) -> Result<WalRecovered> {
        let scan = scan(dir)?;
        Ok(WalRecovered {
            base: scan.base,
            base_through: scan.base_through,
            records: scan.records,
            truncated_bytes: scan.truncated_bytes,
            swept_tmp: 0,
            resumed: scan.any_state,
        })
    }

    /// Directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Policy the log was opened with.
    pub fn knobs(&self) -> WalKnobs {
        self.knobs
    }

    /// Sequence number the next appended record will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Records appended since the current base snapshot.
    pub fn records_since_base(&self) -> u64 {
        self.records_since_base
    }

    /// Whether the automatic-compaction threshold has been reached.
    pub fn wants_compact(&self) -> bool {
        self.knobs.compact_every > 0 && self.records_since_base >= self.knobs.compact_every
    }

    /// Swap the observability handle (counters + trace events).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Append one record to the in-memory batch. Not yet committed, not
    /// yet durable: see [`Wal::commit`] and the flush policy.
    pub fn append(&mut self, rec: &WalRecord) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records_since_base += 1;
        let mut e = Enc::new();
        rec.encode(&mut e);
        let payload = e.into_bytes();
        let start = self.buf.len();
        self.buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.buf.push(0);
        self.buf.extend_from_slice(&seq.to_le_bytes());
        self.buf.extend_from_slice(&payload);
        let crc = crc32(&self.buf[start..]);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.last_frame_start = Some(start);
        self.buf_records += 1;
        self.obs.counter_add("wal.appended", 1);
        seq
    }

    /// Mark the batch boundary: every record appended since the previous
    /// commit becomes atomic, and the flush policy is evaluated at virtual
    /// time `vt`. Returns `true` if the commit triggered a flush.
    pub fn commit(&mut self, vt: f64) -> Result<bool> {
        if let Some(start) = self.last_frame_start.take() {
            self.buf[start + 4] |= FLAG_COMMIT;
            let body_end = self.buf.len() - FRAME_TRAILER_LEN;
            let crc = crc32(&self.buf[start..body_end]);
            self.buf[body_end..].copy_from_slice(&crc.to_le_bytes());
        }
        let due = self.buf_records >= self.knobs.flush_every_n
            || vt - self.last_flush_vt >= self.knobs.flush_every_vt;
        if due && !self.buf.is_empty() {
            self.flush(vt)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Write and fsync every buffered frame. Committed-and-flushed records
    /// are durable; flushed-but-uncommitted frames are discarded by the
    /// next recovery (they are a torn batch by definition).
    pub fn flush(&mut self, vt: f64) -> Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.file.sync_data()?;
            self.obs
                .counter_add("wal.flushed", u64::from(self.buf_records));
            self.obs.counter_add("wal.flushes", 1);
            self.buf.clear();
            self.buf_records = 0;
            self.last_frame_start = None;
        }
        self.last_flush_vt = vt;
        Ok(())
    }

    /// Clean shutdown: commit the open batch and flush it.
    pub fn close(mut self, vt: f64) -> Result<()> {
        self.commit(vt)?;
        self.flush(vt)
    }

    /// Snapshot-anchored compaction. `owner_ckpt` (the owner's own
    /// checkpoint bytes, taken *after* every logged record so far has been
    /// applied) becomes the log's new base, a fresh segment is rotated in,
    /// and superseded segments/bases are retired. The open batch is
    /// committed and flushed first so the anchor never outruns durability.
    pub fn compact(&mut self, owner_ckpt: &[u8], vt: f64) -> Result<()> {
        self.commit(vt)?;
        self.flush(vt)?;
        let through = self.next_seq - 1;
        let mut e = Enc::new();
        e.put_u64(through);
        e.put_bytes(owner_ckpt);
        mqpi_ckpt::write_file(
            &self.dir.join(base_name(through)),
            BASE_KIND,
            &e.into_bytes(),
        )?;

        // Rotate only if the current segment holds frames; an empty segment
        // already starts exactly at through + 1.
        let mut retired = 0u64;
        if self.next_seq != self.seg_first {
            let (f, p) = create_segment(&self.dir, through + 1)?;
            self.file = f;
            self.seg_path = p;
            self.seg_first = through + 1;
        }
        let (bases, segs) = list_dir(&self.dir)?;
        for (n, p) in bases {
            if n < through {
                let _ = fs::remove_file(p);
            }
        }
        for (first, p) in segs {
            if first < self.seg_first && p != self.seg_path {
                retired += fs::metadata(&p).map(|m| m.len()).unwrap_or(0);
                let _ = fs::remove_file(p);
            }
        }
        sync_dir(&self.dir);
        self.base_through = through;
        self.records_since_base = 0;
        self.obs.counter_add("wal.compactions", 1);
        self.obs.emit(
            vt,
            TraceKind::Wal {
                action: "compact",
                seq: through,
                bytes: retired,
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "mqpi-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::RegisterSession,
            WalRecord::Submit {
                session: 7,
                cost: 120.5,
                weight: f64::NAN,
            },
            WalRecord::Subscribe {
                session: 7,
                query: 1,
            },
            WalRecord::Reweight {
                query: 1,
                weight: 2.0,
            },
            WalRecord::Refine {
                query: 1,
                cost: 80.0,
            },
            WalRecord::SetRate { rate: 32.0 },
            WalRecord::Advance { dt: 0.25 },
            WalRecord::Pump,
            WalRecord::Abort { query: 1 },
            WalRecord::CloseSession { session: 7 },
            WalRecord::Mark {
                iter: 3,
                digest: 0xDEAD,
            },
            WalRecord::SimEvent {
                tag: 4,
                at: 1.5,
                id: 9,
                a: -0.0,
                b: f64::INFINITY,
            },
        ]
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        for rec in sample_records() {
            let mut e = Enc::new();
            rec.encode(&mut e);
            let bytes = e.into_bytes();
            let back = WalRecord::decode(&bytes).unwrap();
            // NaN payloads survive: compare through re-encoding.
            let mut e2 = Enc::new();
            back.encode(&mut e2);
            assert_eq!(bytes, e2.into_bytes(), "{rec:?}");
        }
        assert!(WalRecord::decode(&[200]).is_err());
        assert!(WalRecord::decode(&[]).is_err());
        // Trailing garbage is rejected, not ignored.
        let mut e = Enc::new();
        WalRecord::Pump.encode(&mut e);
        e.put_u8(9);
        assert!(WalRecord::decode(&e.into_bytes()).is_err());
    }

    #[test]
    fn append_commit_flush_and_reopen() {
        let dir = tmpdir("basic");
        let knobs = WalKnobs {
            flush_every_n: 2,
            ..WalKnobs::default()
        };
        let (mut wal, rec) = Wal::open(&dir, knobs, Obs::disabled()).unwrap();
        assert!(!rec.resumed);
        assert_eq!(wal.next_seq(), 1);
        for r in sample_records() {
            wal.append(&r);
            wal.commit(0.0).unwrap();
        }
        wal.close(0.0).unwrap();

        let (wal2, rec2) = Wal::open(&dir, knobs, Obs::disabled()).unwrap();
        assert!(rec2.resumed);
        assert_eq!(rec2.truncated_bytes, 0);
        assert_eq!(rec2.records.len(), sample_records().len());
        for (i, (seq, r)) in rec2.records.iter().enumerate() {
            assert_eq!(*seq, i as u64 + 1);
            let mut a = Enc::new();
            r.encode(&mut a);
            let mut b = Enc::new();
            sample_records()[i].encode(&mut b);
            assert_eq!(a.into_bytes(), b.into_bytes());
        }
        assert_eq!(wal2.next_seq(), sample_records().len() as u64 + 1);
        assert_eq!(rec2.last_mark(), Some((3, 0xDEAD)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_batches_writes() {
        let dir = tmpdir("group");
        let knobs = WalKnobs {
            flush_every_n: 4,
            flush_every_vt: 1e9,
            compact_every: 0,
        };
        let (mut wal, _) = Wal::open(&dir, knobs, Obs::disabled()).unwrap();
        let seg = wal.seg_path.clone();
        let header = fs::metadata(&seg).unwrap().len();
        for i in 0..3 {
            wal.append(&WalRecord::Advance { dt: i as f64 });
            assert!(!wal.commit(0.0).unwrap());
        }
        // Three commits, zero flushes: nothing on disk yet.
        assert_eq!(fs::metadata(&seg).unwrap().len(), header);
        wal.append(&WalRecord::Pump);
        assert!(wal.commit(0.0).unwrap());
        assert!(fs::metadata(&seg).unwrap().len() > header);
        // Virtual-time trigger: one record, big vt gap.
        wal.append(&WalRecord::Pump);
        assert!(wal.commit(2e9).unwrap());
        drop(wal);
        let rec = Wal::peek(&dir).unwrap();
        assert_eq!(rec.records.len(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_and_torn_tails_are_discarded() {
        let dir = tmpdir("tail");
        let knobs = WalKnobs {
            flush_every_n: 1,
            ..WalKnobs::default()
        };
        let (mut wal, _) = Wal::open(&dir, knobs, Obs::disabled()).unwrap();
        for i in 0..5 {
            wal.append(&WalRecord::Mark { iter: i, digest: i });
            wal.commit(0.0).unwrap();
        }
        // An appended-but-never-committed record, force-flushed.
        wal.append(&WalRecord::Pump);
        wal.flush(0.0).unwrap();
        let seg = wal.seg_path.clone();
        drop(wal);

        let obs = Obs::enabled();
        let (wal2, rec) = Wal::open(&dir, knobs, obs.clone()).unwrap();
        assert_eq!(rec.records.len(), 5);
        assert!(rec.truncated_bytes > 0);
        assert_eq!(obs.counter("wal.truncated_bytes"), rec.truncated_bytes);
        assert_eq!(wal2.next_seq(), 6);
        drop(wal2);

        // Torn frame: chop bytes off the tail of the last committed frame.
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let (wal3, rec3) = Wal::open(&dir, knobs, Obs::disabled()).unwrap();
        assert_eq!(rec3.records.len(), 4);
        assert!(rec3.truncated_bytes > 0);
        assert_eq!(wal3.next_seq(), 5);
        // And the log still appends cleanly after recovery.
        drop(wal3);
        let (mut wal4, _) = Wal::open(&dir, knobs, Obs::disabled()).unwrap();
        wal4.append(&WalRecord::Mark { iter: 9, digest: 9 });
        wal4.commit(0.0).unwrap();
        drop(wal4);
        let rec5 = Wal::peek(&dir).unwrap();
        assert_eq!(rec5.records.len(), 5);
        assert_eq!(rec5.last_mark(), Some((9, 9)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_anchors_and_retires() {
        let dir = tmpdir("compact");
        let knobs = WalKnobs {
            flush_every_n: 1,
            ..WalKnobs::default()
        };
        let obs = Obs::enabled();
        let (mut wal, _) = Wal::open(&dir, knobs, obs.clone()).unwrap();
        for i in 0..10 {
            wal.append(&WalRecord::Mark { iter: i, digest: 0 });
            wal.commit(0.0).unwrap();
        }
        wal.compact(b"owner-state-after-10", 0.0).unwrap();
        assert_eq!(wal.records_since_base(), 0);
        for i in 10..13 {
            wal.append(&WalRecord::Mark { iter: i, digest: 0 });
            wal.commit(0.0).unwrap();
        }
        drop(wal);
        assert_eq!(obs.counter("wal.compactions"), 1);

        let (bases, segs) = list_dir(&dir).unwrap();
        assert_eq!(bases.len(), 1);
        assert_eq!(bases[0].0, 10);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].0, 11);

        let (_, rec) = Wal::open(&dir, knobs, Obs::disabled()).unwrap();
        assert_eq!(rec.base.as_deref(), Some(&b"owner-state-after-10"[..]));
        assert_eq!(rec.base_through, 10);
        let seqs: Vec<u64> = rec.records.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![11, 12, 13]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_on_empty_segment_skips_rotation() {
        let dir = tmpdir("compact-empty");
        let (mut wal, _) = Wal::open(&dir, WalKnobs::default(), Obs::disabled()).unwrap();
        wal.compact(b"initial", 0.0).unwrap();
        wal.compact(b"initial-again", 0.0).unwrap();
        let (bases, segs) = list_dir(&dir).unwrap();
        assert_eq!(bases.len(), 1);
        assert_eq!(segs.len(), 1);
        let (_, rec) = Wal::open(&dir, WalKnobs::default(), Obs::disabled()).unwrap();
        assert_eq!(rec.base.as_deref(), Some(&b"initial-again"[..]));
        assert_eq!(rec.base_through, 0);
        assert!(rec.records.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn peek_tails_only_flushed_commits() {
        let dir = tmpdir("peek");
        let knobs = WalKnobs {
            flush_every_n: 100,
            flush_every_vt: 1e9,
            compact_every: 0,
        };
        let (mut wal, _) = Wal::open(&dir, knobs, Obs::disabled()).unwrap();
        wal.append(&WalRecord::Mark { iter: 1, digest: 1 });
        wal.commit(0.0).unwrap();
        // Committed but unflushed: invisible to a standby.
        assert_eq!(Wal::peek(&dir).unwrap().records.len(), 0);
        wal.flush(0.0).unwrap();
        assert_eq!(Wal::peek(&dir).unwrap().records.len(), 1);
        // Peek must not truncate the primary's files.
        wal.append(&WalRecord::Pump);
        wal.flush(0.0).unwrap();
        let len_before = fs::metadata(&wal.seg_path).unwrap().len();
        let _ = Wal::peek(&dir).unwrap();
        assert_eq!(fs::metadata(&wal.seg_path).unwrap().len(), len_before);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_knobs_are_rejected() {
        let dir = tmpdir("knobs");
        let bad = WalKnobs {
            flush_every_n: 0,
            ..WalKnobs::default()
        };
        assert!(matches!(
            Wal::open(&dir, bad, Obs::disabled()),
            Err(CkptError::Unsupported(_))
        ));
        let bad_vt = WalKnobs {
            flush_every_vt: f64::NAN,
            ..WalKnobs::default()
        };
        assert!(bad_vt.validate().is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = tmpdir("sweep");
        fs::write(dir.join("base-0000000000000000.ckpt.tmp"), b"torn").unwrap();
        let (_, rec) = Wal::open(&dir, WalKnobs::default(), Obs::disabled()).unwrap();
        assert_eq!(rec.swept_tmp, 1);
        assert!(!dir.join("base-0000000000000000.ckpt.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
