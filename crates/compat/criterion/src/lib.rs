//! Offline stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use — groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `sample_size`, and
//! the `criterion_group!`/`criterion_main!` macros — with straightforward
//! wall-clock measurement (auto-calibrated iteration count, median of a
//! few samples). `cargo bench -- --test` runs every benchmark body exactly
//! once so CI can smoke-test benches without paying measurement time.
//! A positional CLI argument filters benchmarks by substring, like the
//! real crate.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `"name"`, `BenchmarkId::new("name", param)` or
/// `BenchmarkId::from_parameter(param)`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        Self { id }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

#[derive(Debug, Clone)]
struct Options {
    test_mode: bool,
    filter: Option<String>,
}

impl Options {
    fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/CI pass that we accept and ignore.
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_owned()),
            }
        }
        Self { test_mode, filter }
    }
}

pub struct Criterion {
    opts: Options,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            opts: Options::from_args(),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let opts = self.opts.clone();
        run_benchmark(&opts, None, &id.into(), 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let opts = self.criterion.opts.clone();
        run_benchmark(&opts, Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    test_mode: bool,
    /// Median per-iteration time, filled in by `iter`.
    measured: Option<Duration>,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate the iteration count toward ~50ms of measurement.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (0.05 / once.as_secs_f64()).clamp(1.0, 1e7) as u64;
        // A few samples; report the median so one descheduling blip
        // doesn't skew the number.
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(t.elapsed() / iters as u32);
        }
        samples.sort();
        self.measured = Some(samples[samples.len() / 2]);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_benchmark(
    opts: &Options,
    group: Option<&str>,
    id: &BenchmarkId,
    _sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let full = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    if let Some(filter) = &opts.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        test_mode: opts.test_mode,
        measured: None,
    };
    f(&mut b);
    if opts.test_mode {
        println!("test {full} ... ok");
    } else if let Some(d) = b.measured {
        // The `mean_ns` field is machine-readable for scripts that collect
        // before/after numbers.
        println!(
            "{full:<60} time: {:>12}   mean_ns: {}",
            format_duration(d),
            d.as_nanos()
        );
    } else {
        println!("{full:<60} (no measurement: iter was never called)");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
