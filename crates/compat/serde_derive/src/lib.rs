//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public data types
//! but never serializes anything (no `serde_json`-style consumer is linked).
//! This proc-macro crate accepts the same derive syntax — including
//! `#[serde(...)]` field/container attributes — and expands to nothing, so
//! the annotations stay in place for a future real-serde build without
//! requiring network access to crates.io today.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
