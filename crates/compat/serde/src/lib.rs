//! Offline stand-in for `serde`.
//!
//! The workspace uses serde purely as `#[derive(serde::Serialize,
//! serde::Deserialize)]` annotations on data types; nothing actually
//! serializes (no format crate is linked). This crate provides the two
//! marker traits and re-exports the no-op derive macros so the annotations
//! compile without any crates.io access. Swapping back to real serde is a
//! one-line Cargo change; no source edits are required.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Never implemented by the
/// no-op derive; present so `T: Serialize` bounds would still name-resolve.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
