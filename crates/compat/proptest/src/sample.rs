//! `prop::sample::select`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct Select<T> {
    options: Vec<T>,
}

pub fn select<T: Clone>(options: impl Into<Vec<T>>) -> Select<T> {
    let options = options.into();
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}
