//! `any::<T>()` for the primitive types the workspace generates.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix small magnitudes (likely to hit interesting logic)
                // with raw bit patterns and the extremes.
                match rng.below(8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 | 4 => (rng.below(201) as i64 - 100) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(10) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::INFINITY,
            3 => f64::NEG_INFINITY,
            4 => f64::NAN,
            5 | 6 => (rng.unit_f64() - 0.5) * 200.0,
            // Raw bits: exercises subnormals, huge exponents, quiet and
            // signaling NaN payloads.
            _ => f64::from_bits(rng.next_u64()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::any_char(rng)
    }
}
