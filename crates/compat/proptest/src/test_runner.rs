//! Deterministic test runner: a splitmix64 PRNG seeded from the test's
//! module path, a case loop, and the fail/reject error type.

/// Deterministic PRNG handed to strategies. Splitmix64 — tiny, fast, and
/// good enough for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`0` when `n == 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Mirror of `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!`/`prop_filter` condition.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Mirror of `proptest::test_runner::Config` (the fields this workspace
/// uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Upper bound on rejected cases before the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            // The real default (256) is tuned for a shrinking runner; 64
            // keeps full-workspace `cargo test` fast while still covering
            // each property with dozens of random cases.
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

fn seed_from_ident(ident: &str) -> u64 {
    // FNV-1a, so every test gets a distinct but stable seed.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in ident.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

/// Drives one property: generates inputs until `config.cases` cases pass,
/// panicking on the first failure. The seed is derived from `ident` (the
/// test's full module path) unless `PROPTEST_SEED` overrides it.
pub fn run_property<F>(config: &ProptestConfig, ident: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| seed_from_ident(ident)),
        Err(_) => seed_from_ident(ident),
    };
    let mut rng = TestRng::new(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u32 = 0;
    while passed < config.cases {
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{ident}: gave up after {rejected} rejected cases \
                         ({passed}/{} passed)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{ident}: property failed at case #{attempt} (seed {seed}): {msg}");
            }
        }
    }
}
