//! The `Strategy` trait, primitive strategies (ranges, tuples, string
//! patterns, `Just`) and the `prop_map`/`prop_filter` combinators.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`. Unlike real proptest there
/// is no value tree / shrinking; a strategy simply produces a value per
/// case.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            f,
            reason: reason.into(),
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

pub struct Filter<S, F> {
    source: S,
    f: F,
    reason: String,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Local rejection loop: regenerate rather than discarding the whole
        // case, with a cap so an unsatisfiable filter fails loudly.
        for _ in 0..10_000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive values",
            self.reason
        );
    }
}

/// Uniformly picks one of several boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                // Light edge bias: boundaries catch off-by-one properties
                // that a uniform draw would rarely hit.
                match rng.below(16) {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => ((self.start as i128)
                        + (rng.next_u64() as i128).rem_euclid(span)) as $t,
                }
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        if rng.below(16) == 0 {
            self.start
        } else {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String literals act as generator patterns (a small regex subset: char
/// classes, `.`, literals, and `{m}`/`{m,n}`/`?`/`*`/`+` quantifiers).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
