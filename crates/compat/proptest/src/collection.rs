//! `prop::collection::vec`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Mirror of `proptest::collection::SizeRange` (inclusive bounds).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min + 1) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
