//! Generator for the regex-like string patterns accepted as strategies
//! (`"[a-z][a-z0-9_]{0,8}"`, `".{0,200}"`, ...).

use crate::test_runner::TestRng;

enum Atom {
    /// `.` — any char except `\n`.
    Dot,
    /// A literal character.
    Literal(char),
    /// `[...]` — explicit chars and inclusive ranges.
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        let hi = chars[i + 1];
                        i += 2;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(i < chars.len(), "unterminated char class in {pattern:?}");
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in {pattern:?}");
                let c = match chars[i] {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: u32 = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Any valid char except `\n`, biased toward printable ASCII so generated
/// strings exercise tokenizers with realistic input while still covering
/// unicode.
pub(crate) fn dot_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0 => any_char(rng),
        1 => ['\t', '\r', '\u{0}', '\u{7f}'][rng.below(4) as usize],
        _ => (0x20 + rng.below(0x5f)) as u8 as char,
    }
}

/// Uniform-ish over all unicode scalar values, excluding `\n`.
pub(crate) fn any_char(rng: &mut TestRng) -> char {
    loop {
        let cp = (rng.next_u64() % 0x11_0000) as u32;
        if let Some(c) = char::from_u32(cp) {
            if c != '\n' {
                return c;
            }
        }
    }
}

fn class_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|(lo, hi)| (*hi as u64).saturating_sub(*lo as u64) + 1)
        .sum();
    let mut pick = rng.below(total);
    for (lo, hi) in ranges {
        let span = (*hi as u64) - (*lo as u64) + 1;
        if pick < span {
            return char::from_u32(*lo as u32 + pick as u32).expect("invalid class range");
        }
        pick -= span;
    }
    unreachable!("class selection out of bounds")
}

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
        for _ in 0..count {
            out.push(match &piece.atom {
                Atom::Dot => dot_char(rng),
                Atom::Literal(c) => *c,
                Atom::Class(ranges) => class_char(ranges, rng),
            });
        }
    }
    out
}
