//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `proptest!`, `prop_assert*`, `prop_oneof!`, `any::<T>()`, ranges,
//! tuples, string patterns, `prop::collection::vec`, `prop::sample::select`
//! and the `prop_map`/`prop_filter` combinators — on top of a small
//! deterministic PRNG. Differences from the real crate: no shrinking
//! (failures report the original case) and no persisted failure seeds
//! (each test derives its seed from its own path, so runs are fully
//! reproducible).

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of `proptest::prelude::prop`, exposing the strategy modules.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_item! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_item! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_item {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_property(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_item! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a), stringify!($b), __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks one of several strategies (uniformly; weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
