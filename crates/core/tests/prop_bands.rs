//! Property test: uncertainty-band calibration.
//!
//! Over seeded chaos workloads — random costs, random fault plans mixing
//! cost noise and rate dips — the ensemble's p10/p90 bands must be
//! *calibrated*: the realized remaining time should fall inside the band
//! for roughly the nominal 80 % of samples. Exact calibration is not
//! achievable (residual windows are finite, faults are adversarial), so
//! the property asserts a generous floor rather than a tight interval;
//! what it rules out is bands that are decorative — ordered-looking but
//! uncorrelated with realized outcomes.
//!
//! Structural invariants are checked exactly, on every emitted band:
//! finite, non-negative, `p10 ≤ p50 ≤ p90`, and a chosen-estimator tag
//! that names a real lineup member.

use proptest::prelude::*;

use mqpi_core::{Ensemble, Visibility};
use mqpi_sim::job::SyntheticJob;
use mqpi_sim::rng::Rng;
use mqpi_sim::system::{ErrorPolicy, FinishKind, StepMode, System, SystemConfig};
use mqpi_sim::{FaultMix, FaultPlan};

const HORIZON: f64 = 300.0;
const SAMPLE_INTERVAL: f64 = 5.0;

struct BandOutcome {
    /// (sample time, query id, p10, p50, p90) for every banded estimate.
    samples: Vec<(f64, u64, f64, f64, f64)>,
    covered: u32,
    scored: u32,
}

/// Drive one seeded chaos run with the standard ensemble and collect its
/// banded estimates plus post-hoc coverage against realized finishes.
fn run_chaos(seed: u64, faults_per_kind: usize) -> BandOutcome {
    let mut rng = Rng::seed_from_u64(seed);
    let mut sys = System::new(SystemConfig {
        rate: 100.0,
        quantum_units: 16.0,
        speed_tau: 10.0,
        step_mode: StepMode::Quantum,
        ..Default::default()
    });
    for i in 0..8 {
        let cost = rng.range_f64(500.0, 4000.0) as u64;
        sys.submit(format!("q{i}"), Box::new(SyntheticJob::new(cost)), 1.0);
    }
    sys.set_error_policy(ErrorPolicy::Isolate);
    if faults_per_kind > 0 {
        sys.install_faults(FaultPlan::generate(
            seed ^ 0xBAD5_EED5_0000_CAFE,
            HORIZON,
            &FaultMix {
                cost_noise: faults_per_kind,
                rate_dips: faults_per_kind,
                ..Default::default()
            },
        ));
    }

    let mut ens = Ensemble::standard(Visibility::concurrent_only(), 4.0);
    let names = ens.names();
    let mut samples = Vec::new();
    let mut next_sample = 0.0;
    let mut seen_finished = 0usize;
    loop {
        if sys.now() >= next_sample {
            // Feed realized finishes to the selector before estimating.
            let finished = sys.finished();
            for rec in &finished[seen_finished..] {
                if rec.kind == FinishKind::Completed {
                    ens.resolve(rec.id, rec.finished);
                } else {
                    ens.forget(rec.id);
                }
            }
            seen_finished = finished.len();

            let snap = sys.snapshot();
            let out = ens.tick(&snap);
            for b in &out.banded {
                assert!(
                    b.band.p10.is_finite() && b.band.p50.is_finite() && b.band.p90.is_finite(),
                    "non-finite band at t={}: {:?}",
                    snap.time,
                    b
                );
                assert!(
                    b.band.p10 >= 0.0 && b.band.p10 <= b.band.p50 && b.band.p50 <= b.band.p90,
                    "disordered band at t={}: {:?}",
                    snap.time,
                    b
                );
                assert!(
                    names.contains(&b.chosen),
                    "band tagged with unknown estimator {:?}",
                    b.chosen
                );
                samples.push((snap.time, b.id, b.band.p10, b.band.p50, b.band.p90));
            }
            while next_sample <= sys.now() {
                next_sample += SAMPLE_INTERVAL;
            }
        }
        if sys.now() >= HORIZON || !sys.has_work() {
            break;
        }
        sys.step().expect("drive step");
    }

    // Post-hoc coverage: of the samples whose query ran to completion,
    // how many realized remaining times fell inside [p10, p90]?
    let (mut covered, mut scored) = (0u32, 0u32);
    for &(t, id, p10, _, p90) in &samples {
        let Some(rec) = sys.finished_record(id) else {
            continue;
        };
        if rec.kind != FinishKind::Completed {
            continue;
        }
        let actual = rec.finished - t;
        if actual < 1.0 {
            continue;
        }
        scored += 1;
        if p10 <= actual && actual <= p90 {
            covered += 1;
        }
    }
    BandOutcome {
        samples,
        covered,
        scored,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        .. ProptestConfig::default()
    })]

    #[test]
    fn bands_are_ordered_finite_and_calibrated(
        seed in 0u64..1_000_000,
        faults_per_kind in 0usize..6,
    ) {
        let out = run_chaos(seed, faults_per_kind);
        // The workload always produces banded samples and completions to
        // score them against; otherwise the property is vacuous.
        prop_assert!(!out.samples.is_empty(), "no banded estimates emitted");
        prop_assert!(out.scored >= 20, "only {} scored samples", out.scored);
        // Nominal coverage is 80 %. Demand a generous floor: far enough
        // below nominal to tolerate adversarial fault plans and finite
        // residual windows, far enough above zero to catch bands that
        // ignore realized outcomes entirely.
        let coverage = f64::from(out.covered) / f64::from(out.scored);
        prop_assert!(
            coverage >= 0.5,
            "p10–p90 coverage {:.2} (covered {}/{}) under seed {} with {} faults/kind",
            coverage,
            out.covered,
            out.scored,
            seed,
            faults_per_kind
        );
    }
}
