//! Property tests for the incremental fluid predictor: random event
//! sequences (arrivals, finishes, aborts, re-weights, cost refinements,
//! rate changes, clock advances) drive an [`IncrementalFluid`] alongside a
//! deliberately naive O(n²) GPS shadow simulation, and every intermediate
//! estimate is checked three ways:
//!
//! 1. **Bit-exact against the `predict` oracle** — `estimates_full` must
//!    return exactly what a fresh `fluid::predict` call over the extracted
//!    live set returns (same bits, not just close), per the delta-update
//!    contract.
//! 2. **Analytically against the shadow** — remaining costs and point
//!    estimates must agree with the naive simulation to tight relative
//!    tolerance, so the treap bookkeeping can't drift from the model it
//!    claims to maintain.
//! 3. **Against `predict_reference`** — the dense-timeline reference
//!    implementation, to the same tolerance the snapshot path is held to.
//!
//! Checkpoints are taken at a random cut: the restored structure must
//! re-encode byte-identically and serve bit-identical estimates.

// Test code: unwrap/expect on known-good fixtures is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use mqpi_core::fluid::{predict, predict_reference, FluidQuery};
use mqpi_core::IncrementalFluid;

/// One scripted operation, decoded from raw generated scalars.
#[derive(Debug, Clone, Copy)]
enum Op {
    Arrive { cost: f64, weight: f64 },
    Finish { pick: f64 },
    Abort { pick: f64 },
    Reweight { pick: f64, weight: f64 },
    RefineCost { pick: f64, cost: f64 },
    SetRate { rate: f64 },
    Advance { dt: f64 },
}

fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..10, 0.0f64..1.0, 0.0f64..1.0), 1..max_len).prop_map(|raw| {
        raw.into_iter()
            .map(|(sel, a, b)| match sel {
                // Bias toward arrivals so the structure grows.
                0..=3 => Op::Arrive {
                    cost: 1.0 + a * 2000.0,
                    weight: [0.5, 1.0, 2.0, 4.0][(b * 4.0) as usize % 4],
                },
                4 => Op::Finish { pick: a },
                5 => Op::Abort { pick: a },
                6 => Op::Reweight {
                    pick: a,
                    weight: [0.5, 1.0, 2.0, 4.0][(b * 4.0) as usize % 4],
                },
                7 => Op::RefineCost {
                    pick: a,
                    cost: 1.0 + b * 2000.0,
                },
                8 => Op::SetRate {
                    rate: 10.0 + a * 400.0,
                },
                _ => Op::Advance { dt: a * 8.0 },
            })
            .collect()
    })
}

/// Naive GPS fluid simulation: each live query drains at
/// `rate · w_i / W`; advancing crosses completion boundaries one at a
/// time. O(n) per boundary, recomputed from scratch — slow and obviously
/// correct.
struct Shadow {
    live: Vec<FluidQuery>,
    rate: f64,
}

impl Shadow {
    fn advance(&mut self, mut dt: f64) {
        while dt > 0.0 && !self.live.is_empty() {
            let w_tot: f64 = self.live.iter().map(|q| q.weight).sum();
            // Time to the earliest completion at current membership.
            let dtc = self
                .live
                .iter()
                .map(|q| q.cost * w_tot / (self.rate * q.weight))
                .fold(f64::INFINITY, f64::min);
            let step = dtc.min(dt);
            for q in &mut self.live {
                q.cost -= step * self.rate * q.weight / w_tot;
            }
            // Work-unit slack ~ seconds·rate scaled; completions in the
            // treap trigger on a 1e-9 virtual-time epsilon, so allow the
            // shadow a little float drift at the boundary.
            self.live.retain(|q| q.cost > 1e-6);
            dt -= step;
        }
    }
}

fn pick_id(live: &[FluidQuery], pick: f64) -> Option<u64> {
    if live.is_empty() {
        return None;
    }
    let i = ((pick * live.len() as f64) as usize).min(live.len() - 1);
    Some(live[i].id)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The maintained structure, the naive shadow, the `predict` oracle,
    /// and `predict_reference` all tell the same story at every step.
    #[test]
    fn random_event_streams_match_oracles(ops in arb_ops(60), rate0 in 20.0f64..200.0) {
        let mut inc = IncrementalFluid::new(rate0);
        let mut shadow = Shadow { live: Vec::new(), rate: rate0 };
        let mut next_id = 0u64;
        let mut due = Vec::new();
        let mut extracted = Vec::new();

        for op in ops {
            match op {
                Op::Arrive { cost, weight } => {
                    inc.arrive(next_id, cost, weight);
                    shadow.live.push(FluidQuery { id: next_id, cost, weight });
                    next_id += 1;
                }
                Op::Finish { pick } => {
                    if let Some(id) = pick_id(&shadow.live, pick) {
                        prop_assert!(inc.finish(id), "finish({id}) not live in treap");
                        shadow.live.retain(|q| q.id != id);
                    }
                }
                Op::Abort { pick } => {
                    if let Some(id) = pick_id(&shadow.live, pick) {
                        prop_assert!(inc.abort(id), "abort({id}) not live in treap");
                        shadow.live.retain(|q| q.id != id);
                    }
                }
                Op::Reweight { pick, weight } => {
                    if let Some(id) = pick_id(&shadow.live, pick) {
                        prop_assert!(inc.reweight(id, weight));
                        let q = shadow.live.iter_mut().find(|q| q.id == id).unwrap();
                        q.weight = weight;
                    }
                }
                Op::RefineCost { pick, cost } => {
                    if let Some(id) = pick_id(&shadow.live, pick) {
                        prop_assert!(inc.refine_cost(id, cost));
                        let q = shadow.live.iter_mut().find(|q| q.id == id).unwrap();
                        q.cost = cost;
                    }
                }
                Op::SetRate { rate } => {
                    inc.set_rate(rate);
                    shadow.rate = rate;
                }
                Op::Advance { dt } => {
                    inc.advance(dt);
                    due.clear();
                    inc.drain_due(&mut due);
                    shadow.advance(dt);
                }
            }

            // Live sets agree, modulo boundary-epsilon completions: a
            // query one side retired may linger in the other only with a
            // negligible residual.
            for q in &shadow.live {
                if !inc.contains(q.id) {
                    prop_assert!(
                        q.cost < 1e-3,
                        "treap retired {} early (shadow cost {})", q.id, q.cost
                    );
                }
            }
            let mut shadow_ids: Vec<u64> = shadow.live.iter().map(|q| q.id).collect();
            shadow_ids.sort_unstable();
            extracted.clear();
            inc.extract_into(&mut extracted);
            for q in &extracted {
                if shadow_ids.binary_search(&q.id).is_err() {
                    prop_assert!(
                        q.cost < 1e-3,
                        "shadow retired {} early (treap cost {})", q.id, q.cost
                    );
                }
            }

            // (1) Bit-exact vs the predict oracle over the extracted set.
            let full = inc.estimates_full(&[], None, None);
            let fresh = predict(&extracted, &[], None, None, inc.rate());
            prop_assert_eq!(full.finish_times.len(), fresh.finish_times.len());
            for (a, b) in full.finish_times.iter().zip(fresh.finish_times.iter()) {
                prop_assert_eq!(a.0, b.0);
                prop_assert_eq!(
                    a.1.to_bits(), b.1.to_bits(),
                    "estimates_full not bit-identical to fresh predict for {}", a.0
                );
            }

            // (2) Remaining costs and point estimates vs the naive shadow.
            let reference = predict_reference(&extracted, &[], None, None, inc.rate());
            for q in &shadow.live {
                if q.cost < 1e-3 || !inc.contains(q.id) {
                    continue;
                }
                let rc = inc.remaining_cost(q.id).unwrap();
                prop_assert!(
                    (rc - q.cost).abs() <= 1e-6 * q.cost.max(1.0),
                    "remaining_cost({}) = {} vs shadow {}", q.id, rc, q.cost
                );
                let est = inc.estimate(q.id).unwrap();
                let oracle = fresh.remaining_for(q.id).unwrap();
                prop_assert!(
                    (est - oracle).abs() <= 1e-6 * oracle.max(1.0),
                    "estimate({}) = {} vs oracle {}", q.id, est, oracle
                );
                // (3) And the dense reference timeline agrees.
                let rf = reference.remaining_for(q.id).unwrap();
                prop_assert!(
                    (est - rf).abs() <= 1e-5 * rf.max(1.0),
                    "estimate({}) = {} vs reference {}", q.id, est, rf
                );
            }
        }
    }

    /// Checkpointing at a random cut of the stream: byte-identical
    /// re-encode, bit-identical estimates, identical future evolution.
    #[test]
    fn checkpoint_cut_preserves_everything(ops in arb_ops(40), rate0 in 20.0f64..200.0, cut in 0.0f64..1.0) {
        let mut inc = IncrementalFluid::new(rate0);
        let mut next_id = 0u64;
        let mut live: Vec<u64> = Vec::new();
        let cut_at = (cut * ops.len() as f64) as usize;
        let mut due = Vec::new();

        let apply = |inc: &mut IncrementalFluid, live: &mut Vec<u64>, next_id: &mut u64, due: &mut Vec<u64>, op: Op| {
            match op {
                Op::Arrive { cost, weight } => {
                    inc.arrive(*next_id, cost, weight);
                    live.push(*next_id);
                    *next_id += 1;
                }
                Op::Finish { pick } | Op::Abort { pick } => {
                    if !live.is_empty() {
                        let i = ((pick * live.len() as f64) as usize).min(live.len() - 1);
                        let id = live.swap_remove(i);
                        inc.finish(id);
                    }
                }
                Op::Reweight { pick, weight } => {
                    if !live.is_empty() {
                        let i = ((pick * live.len() as f64) as usize).min(live.len() - 1);
                        inc.reweight(live[i], weight);
                    }
                }
                Op::RefineCost { pick, cost } => {
                    if !live.is_empty() {
                        let i = ((pick * live.len() as f64) as usize).min(live.len() - 1);
                        inc.refine_cost(live[i], cost);
                    }
                }
                Op::SetRate { rate } => inc.set_rate(rate),
                Op::Advance { dt } => {
                    inc.advance(dt);
                    due.clear();
                    inc.drain_due(due);
                    live.retain(|id| inc.contains(*id));
                }
            }
        };

        for &op in &ops[..cut_at] {
            apply(&mut inc, &mut live, &mut next_id, &mut due, op);
        }

        let mut e = mqpi_ckpt::Enc::new();
        inc.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = mqpi_ckpt::Dec::new(&bytes);
        let mut restored = IncrementalFluid::decode(&mut d).expect("decode");
        prop_assert!(d.is_exhausted());

        let mut e2 = mqpi_ckpt::Enc::new();
        restored.encode(&mut e2);
        prop_assert_eq!(&bytes, &e2.into_bytes(), "re-encode must be byte-identical");

        // Replay the tail of the stream against both structures.
        let mut live2 = live.clone();
        let mut next2 = next_id;
        let mut due2 = Vec::new();
        for &op in &ops[cut_at..] {
            apply(&mut inc, &mut live, &mut next_id, &mut due, op);
            apply(&mut restored, &mut live2, &mut next2, &mut due2, op);
            prop_assert_eq!(inc.len(), restored.len());
            prop_assert_eq!(inc.virtual_time().to_bits(), restored.virtual_time().to_bits());
            for &id in &live {
                match (inc.estimate(id), restored.estimate(id)) {
                    (Some(a), Some(b)) => prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "estimate({}) diverged after restore", id
                    ),
                    (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
                }
            }
        }
    }
}
