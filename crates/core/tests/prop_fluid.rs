//! Property-based tests for the fluid model — the analytical core of the
//! multi-query PI (paper §2.2).

// Test code: unwrap/expect on known-good fixtures is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use mqpi_core::fluid::{
    predict, predict_reference, standard_remaining_times, FluidQuery, FutureArrivals,
};

fn arb_queries(max_n: usize) -> impl Strategy<Value = Vec<FluidQuery>> {
    prop::collection::vec(
        (
            1.0f64..5000.0,
            prop::sample::select(vec![0.5, 1.0, 2.0, 4.0]),
        ),
        1..max_n,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (cost, weight))| FluidQuery {
                id: i as u64,
                cost,
                weight,
            })
            .collect()
    })
}

proptest! {
    /// The closed form and the event-driven simulation are the same model.
    #[test]
    fn closed_form_equals_event_simulation(qs in arb_queries(12), rate in 1.0f64..500.0) {
        let closed = standard_remaining_times(&qs, rate);
        let p = predict(&qs, &[], None, None, rate);
        for (i, q) in qs.iter().enumerate() {
            let ev = p.remaining_for(q.id).unwrap();
            prop_assert!(
                (ev - closed[i]).abs() < 1e-6 * closed[i].max(1.0),
                "query {}: closed {} vs event {}",
                q.id, closed[i], ev
            );
        }
    }

    /// Queries finish in ascending c/w order (the paper's induction).
    #[test]
    fn finish_order_follows_virtual_time(qs in arb_queries(12), rate in 1.0f64..500.0) {
        let times = standard_remaining_times(&qs, rate);
        let mut idx: Vec<usize> = (0..qs.len()).collect();
        idx.sort_by(|&a, &b| {
            (qs[a].cost / qs[a].weight).total_cmp(&(qs[b].cost / qs[b].weight))
        });
        for w in idx.windows(2) {
            prop_assert!(times[w[0]] <= times[w[1]] + 1e-9);
        }
    }

    /// Work conservation: the last completion is exactly total work / C.
    #[test]
    fn work_conservation(qs in arb_queries(12), rate in 1.0f64..500.0) {
        let times = standard_remaining_times(&qs, rate);
        let last = times.iter().cloned().fold(0.0, f64::max);
        let total: f64 = qs.iter().map(|q| q.cost).sum();
        prop_assert!((last - total / rate).abs() < 1e-6 * (total / rate).max(1.0));
    }

    /// Every query's remaining time is at least its isolated run time and
    /// at most the fully-serialized time.
    #[test]
    fn remaining_time_bounds(qs in arb_queries(12), rate in 1.0f64..500.0) {
        let times = standard_remaining_times(&qs, rate);
        let total: f64 = qs.iter().map(|q| q.cost).sum();
        for (q, t) in qs.iter().zip(&times) {
            prop_assert!(*t >= q.cost / rate - 1e-9, "faster than isolated run");
            prop_assert!(*t <= total / rate + 1e-9, "slower than serialized");
        }
    }

    /// Adding cost to one query never speeds anyone up (monotonicity).
    #[test]
    fn monotone_in_cost(qs in arb_queries(10), extra in 1.0f64..1000.0, rate in 1.0f64..200.0) {
        let base = standard_remaining_times(&qs, rate);
        let mut bigger = qs.clone();
        bigger[0].cost += extra;
        let after = standard_remaining_times(&bigger, rate);
        for (b, a) in base.iter().zip(&after) {
            prop_assert!(*a >= *b - 1e-9);
        }
    }

    /// An admission limit never helps the queued query and never hurts a
    /// query that is already running relative to… actually: with a limit,
    /// running queries finish no later than the no-limit prediction where
    /// queued queries start immediately (they face less concurrency).
    #[test]
    fn admission_limit_helps_running_queries(
        qs in arb_queries(8),
        queued in arb_queries(4),
        rate in 1.0f64..200.0,
    ) {
        let queued: Vec<FluidQuery> = queued
            .into_iter()
            .enumerate()
            .map(|(i, mut q)| {
                q.id = 1000 + i as u64;
                q
            })
            .collect();
        let slots = qs.len(); // exactly the running set fits
        let limited = predict(&qs, &queued, Some(slots), None, rate);
        let unlimited = {
            let mut all = qs.clone();
            all.extend(queued.iter().cloned());
            predict(&all, &[], None, None, rate)
        };
        for q in &qs {
            let l = limited.remaining_for(q.id).unwrap();
            let u = unlimited.remaining_for(q.id).unwrap();
            prop_assert!(l <= u + 1e-6, "query {}: limited {} > unlimited {}", q.id, l, u);
        }
    }

    /// The virtual-time heap predictor is a drop-in replacement for the
    /// reference event sweep across random running/queued/slots/future
    /// configurations.
    #[test]
    fn virtual_time_matches_reference_sweep(
        qs in arb_queries(10),
        queued in arb_queries(6),
        slots_off in 0usize..6,
        lam in 0.0f64..0.05,
        rate in 1.0f64..200.0,
    ) {
        let queued: Vec<FluidQuery> = queued
            .into_iter()
            .enumerate()
            .map(|(i, mut q)| {
                q.id = 1000 + i as u64;
                q
            })
            .collect();
        // slots_off = 0 ⇒ unlimited; otherwise a limit from 1 upward, so
        // both "queue drains gradually" and "all admitted at once" occur.
        let slots = (slots_off > 0).then_some(slots_off);
        let future = (lam > 1e-3)
            .then(|| FutureArrivals::from_rate(lam, 500.0, 1.0).unwrap());
        let fast = predict(&qs, &queued, slots, future.as_ref(), rate);
        let reference = predict_reference(&qs, &queued, slots, future.as_ref(), rate);
        prop_assert_eq!(fast.truncated, reference.truncated);
        prop_assert_eq!(fast.finish_times.len(), reference.finish_times.len());
        for (id, t_ref) in &reference.finish_times {
            let t = fast.remaining_for(*id);
            prop_assert!(t.is_some(), "query {} missing from virtual-time result", id);
            let t = t.unwrap();
            prop_assert!(
                (t - t_ref).abs() < 1e-6 * t_ref.max(1.0),
                "query {}: virtual-time {} vs reference {}",
                id, t, t_ref
            );
        }
    }

    /// Future arrivals only ever push estimates up, monotonically in λ.
    #[test]
    fn future_load_is_monotone_in_lambda(
        qs in arb_queries(8),
        rate in 10.0f64..200.0,
        lam1 in 0.005f64..0.05,
        bump in 1.1f64..3.0,
    ) {
        let lam2 = lam1 * bump;
        let f1 = FutureArrivals::from_rate(lam1, 300.0, 1.0).unwrap();
        let f2 = FutureArrivals::from_rate(lam2, 300.0, 1.0).unwrap();
        let base = predict(&qs, &[], None, None, rate);
        let p1 = predict(&qs, &[], None, Some(&f1), rate);
        let p2 = predict(&qs, &[], None, Some(&f2), rate);
        for q in &qs {
            let b = base.remaining_for(q.id).unwrap();
            let t1 = p1.remaining_for(q.id).unwrap();
            let t2 = p2.remaining_for(q.id).unwrap();
            prop_assert!(t1 >= b - 1e-9);
            prop_assert!(t2 >= t1 - 1e-6, "λ↑ should not speed things up");
        }
    }
}
