//! Property-based crash-safety: snapshotting a running system through the
//! checkpoint codec and restoring it — at *every k-th event boundary* —
//! must be invisible. The restored run's estimate trail (every value both
//! PIs ever produce, compared as IEEE-754 bit patterns) and its finish
//! order must equal the uninterrupted run's exactly, whatever the
//! workload, admission limit, fault plan, or checkpoint cadence.

// Test code: unwrap/expect on known-good fixtures is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use mqpi_core::{MultiQueryPi, SingleQueryPi, Visibility};
use mqpi_sim::job::SyntheticJob;
use mqpi_sim::system::{ErrorPolicy, StepMode, System, SystemConfig};
use mqpi_sim::{AdmissionPolicy, FaultMix, FaultPlan};

fn build(seed: u64, costs: &[u64], slots: usize, per_kind: usize) -> System {
    let mut sys = System::new(SystemConfig {
        rate: 100.0,
        quantum_units: 8.0,
        admission: AdmissionPolicy::MaxConcurrent(slots),
        speed_tau: 10.0,
        step_mode: StepMode::Quantum,
        ..Default::default()
    });
    for (i, c) in costs.iter().enumerate() {
        let weight = 1.0 + 0.5 * (i % 3) as f64;
        sys.submit(format!("q{i}"), Box::new(SyntheticJob::new(*c)), weight);
    }
    sys.set_error_policy(ErrorPolicy::Isolate);
    if per_kind > 0 {
        sys.install_faults(FaultPlan::generate(seed, 120.0, &FaultMix::even(per_kind)));
    }
    sys
}

/// Everything the run produced, bit-exact: the (time, query, estimate)
/// trail of both PIs plus the final finish order with outcomes and times.
type Trail = (Vec<(u64, u64, u64)>, Vec<(u64, String, u64)>);

fn drive(
    mut sys: System,
    slots: usize,
    restore_every: Option<usize>,
) -> Result<Trail, TestCaseError> {
    let single = SingleQueryPi::new();
    let multi = MultiQueryPi::new(Visibility::with_queue(Some(slots)));
    let fail = |what: &str, e: &dyn std::fmt::Display| TestCaseError::fail(format!("{what}: {e}"));
    let mut est = Vec::new();
    let mut steps = 0usize;
    while sys.has_work() {
        if let Some(k) = restore_every {
            if steps.is_multiple_of(k) {
                let bytes = sys.checkpoint().map_err(|e| fail("checkpoint", &e))?;
                sys = System::restore(&bytes).map_err(|e| fail("restore", &e))?;
            }
        }
        if steps.is_multiple_of(4) {
            let snap = sys.snapshot();
            for set in [single.estimates(&snap), multi.estimates(&snap)] {
                // EstimateSet iteration order is a hash-map artifact, not
                // part of the determinism contract — compare sorted.
                let mut pairs: Vec<(u64, u64)> =
                    set.iter().map(|(id, v)| (id, v.to_bits())).collect();
                pairs.sort_unstable();
                est.extend(
                    pairs
                        .into_iter()
                        .map(|(id, v)| (snap.time.to_bits(), id, v)),
                );
            }
        }
        sys.step().map_err(|e| fail("step", &e))?;
        steps += 1;
        prop_assert!(steps < 1_000_000, "runaway simulation");
    }
    let finish = sys
        .finished()
        .iter()
        .map(|f| (f.id, format!("{:?}", f.kind), f.finished.to_bits()))
        .collect();
    Ok((est, finish))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn restoring_at_every_kth_boundary_is_invisible(
        seed in any::<u64>(),
        per_kind in 0usize..4,
        costs in prop::collection::vec(200u64..2500, 2..7),
        slots in 1usize..4,
        k in 1usize..6,
    ) {
        let straight = drive(build(seed, &costs, slots, per_kind), slots, None)?;
        let resumed = drive(build(seed, &costs, slots, per_kind), slots, Some(k))?;
        prop_assert_eq!(straight, resumed, "checkpoint/restore every {} steps changed the run", k);
    }
}
