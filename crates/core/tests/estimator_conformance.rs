//! Cross-estimator conformance suite.
//!
//! Every [`Estimator`] implementation — the paper's two PIs and the three
//! ensemble families — must satisfy the same behavioural contract,
//! whatever its internal model:
//!
//! 1. **Finite outputs, always.** Whatever garbage a snapshot carries
//!    (NaN costs, zero rate, negative speeds, clocks running backwards),
//!    every emitted estimate is finite and non-negative.
//! 2. **Monotone under pure progress.** On a fault-free, arrival-free
//!    workload, a query's remaining-time estimate never *increases*
//!    (beyond a small discretization slack) between samples.
//! 3. **Deterministic across parallelism.** Replicated runs produce
//!    byte-identical estimate logs whether replicates run on one thread
//!    or four.
//! 4. **Graceful on degenerate snapshots.** Empty systems yield empty
//!    sets; a fresh lone query yields exactly `cost / rate`.
//! 5. **Observation is a pure read.** `estimates_observed` returns the
//!    same set as `estimates`, with or without an enabled handle.
//!
//! The suite is lineup-driven: adding an estimator to [`lineup`] runs it
//! through every rule with no further test code.

use mqpi_core::ensemble::Estimator;
use mqpi_core::{
    DriverNodePi, FutureWorkload, MultiQueryPi, SingleQueryPi, SpeedEwmaPi, TotalWorkPi, Visibility,
};
use mqpi_obs::Obs;
use mqpi_sim::job::SyntheticJob;
use mqpi_sim::rng::Rng;
use mqpi_sim::system::{QueryState, QueuedState, StepMode, System, SystemConfig, SystemSnapshot};

/// Every estimator configuration under contract. Labels keep assertion
/// messages readable; boxes keep the suite generic over the trait.
fn lineup() -> Vec<(&'static str, Box<dyn Estimator>)> {
    vec![
        ("single", Box::new(SingleQueryPi::new())),
        (
            "multi/concurrent",
            Box::new(MultiQueryPi::new(Visibility::concurrent_only())),
        ),
        (
            "multi/queue",
            Box::new(MultiQueryPi::new(Visibility::with_queue(Some(3)))),
        ),
        (
            "multi/future",
            Box::new(MultiQueryPi::new(Visibility::with_future(
                Some(3),
                FutureWorkload {
                    lambda: 0.1,
                    avg_cost: 200.0,
                    avg_weight: 1.0,
                },
            ))),
        ),
        ("dne", Box::new(DriverNodePi::new())),
        ("tgn", Box::new(TotalWorkPi::new())),
        ("ewma", Box::new(SpeedEwmaPi::new(4.0))),
    ]
}

fn state(id: u64, remaining: f64, done: f64, speed: Option<f64>) -> QueryState {
    QueryState {
        id,
        name: format!("q{id}").into(),
        weight: 1.0,
        arrived: 0.0,
        started: 0.0,
        done,
        remaining,
        initial_estimate: done + remaining,
        observed_speed: speed,
        blocked: false,
        rolling_back: false,
    }
}

fn snap(time: f64, rate: f64, running: Vec<QueryState>) -> SystemSnapshot {
    SystemSnapshot {
        time,
        rate,
        running,
        queued: vec![],
    }
}

/// Snapshots engineered to trip naive estimator math: divisions by zero,
/// non-finite inputs, impossible clocks. The estimators' contract is that
/// whatever happens internally, the *sanitized* output stays clean.
fn adversarial_snapshots() -> Vec<(&'static str, SystemSnapshot)> {
    let mut zero_weight = state(1, 100.0, 0.0, None);
    zero_weight.weight = 0.0;
    let mut all_blocked = snap(5.0, 100.0, vec![state(1, 100.0, 0.0, None)]);
    all_blocked.running[0].blocked = true;
    let mut clock_backwards = state(1, 100.0, 50.0, None);
    clock_backwards.started = 1e9; // "started" far in the future
    let mut nan_state = state(1, f64::NAN, f64::NAN, Some(f64::NAN));
    nan_state.weight = f64::NAN;
    let mut queued = snap(0.0, 100.0, vec![state(1, 100.0, 0.0, None)]);
    queued.queued.push(QueuedState {
        id: 9,
        name: "w".into(),
        weight: 0.0,
        arrived: 0.0,
        est_cost: f64::INFINITY,
    });
    vec![
        ("empty", snap(0.0, 100.0, vec![])),
        (
            "zero rate",
            snap(0.0, 0.0, vec![state(1, 100.0, 0.0, None)]),
        ),
        (
            "negative rate",
            snap(0.0, -5.0, vec![state(1, 100.0, 0.0, None)]),
        ),
        ("zero weight", snap(0.0, 100.0, vec![zero_weight])),
        ("all blocked", all_blocked),
        (
            "zero observed speed",
            snap(3.0, 100.0, vec![state(1, 100.0, 10.0, Some(0.0))]),
        ),
        (
            "negative observed speed",
            snap(3.0, 100.0, vec![state(1, 100.0, 10.0, Some(-4.0))]),
        ),
        ("clock backwards", snap(2.0, 100.0, vec![clock_backwards])),
        ("nan everything", snap(1.0, 100.0, vec![nan_state])),
        (
            "infinite cost",
            snap(0.0, 100.0, vec![state(1, f64::INFINITY, 0.0, None)]),
        ),
        ("queued garbage", queued),
    ]
}

#[test]
fn outputs_are_finite_on_adversarial_snapshots() {
    for (label, snap) in adversarial_snapshots() {
        for (name, mut est) in lineup() {
            let set = est.estimates(&snap);
            for (id, v) in set.iter() {
                assert!(
                    v.is_finite() && v >= 0.0,
                    "{name} on `{label}` snapshot: id {id} got {v}"
                );
            }
        }
    }
}

/// A small fault-free system: four queries of different costs started
/// together, no arrivals, quantum scheduling. Pure progress.
fn pure_progress_system(seed: u64) -> System {
    let mut rng = Rng::seed_from_u64(seed);
    let mut sys = System::new(SystemConfig {
        rate: 100.0,
        quantum_units: 16.0,
        speed_tau: 10.0,
        step_mode: StepMode::Quantum,
        ..Default::default()
    });
    for i in 0..4 {
        let cost = rng.range_f64(800.0, 4000.0) as u64;
        sys.submit(format!("q{i}"), Box::new(SyntheticJob::new(cost)), 1.0);
    }
    sys
}

#[test]
fn remaining_estimates_never_increase_under_pure_progress() {
    // Quantum discretization and EWMA warm-up allow tiny wobbles; anything
    // beyond this slack means an estimator thinks progress is *undoing*.
    const SLACK: f64 = 1.0;
    for (name, mut est) in lineup() {
        let mut sys = pure_progress_system(42);
        let mut last: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
        let mut next_sample = 0.0;
        let mut checked = 0u32;
        while sys.has_work() {
            if sys.now() >= next_sample {
                let snap = sys.snapshot();
                let set = est.estimates(&snap);
                for (id, v) in set.iter() {
                    if let Some(&prev) = last.get(&id) {
                        assert!(
                            v <= prev + SLACK,
                            "{name}: id {id} estimate rose {prev} -> {v} at t={}",
                            snap.time
                        );
                        checked += 1;
                    }
                    last.insert(id, v);
                }
                next_sample += 5.0;
            }
            sys.step().expect("drive step");
        }
        assert!(checked > 10, "{name}: monotonicity barely exercised");
    }
}

/// One replicate's estimate log, at full float precision.
fn replicate_log(seed: u64) -> String {
    let mut lineup = lineup();
    let mut sys = pure_progress_system(seed);
    let mut log = String::new();
    let mut next_sample = 0.0;
    while sys.has_work() {
        if sys.now() >= next_sample {
            let snap = sys.snapshot();
            for (name, est) in lineup.iter_mut() {
                let set = est.estimates(&snap);
                let mut pairs: Vec<(u64, f64)> = set.iter().collect();
                pairs.sort_by_key(|&(id, _)| id);
                for (id, v) in pairs {
                    log.push_str(&format!("{} t={} id={id} v={v:.17e}\n", name, snap.time));
                }
            }
            next_sample += 5.0;
        }
        sys.step().expect("drive step");
    }
    log
}

#[test]
fn estimates_are_deterministic_across_worker_counts() {
    const REPLICATES: u64 = 4;
    let serial: Vec<String> = (0..REPLICATES).map(replicate_log).collect();
    let handles: Vec<_> = (0..REPLICATES)
        .map(|r| std::thread::spawn(move || replicate_log(r)))
        .collect();
    let threaded: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(serial, threaded, "estimate logs diverged across threads");
    // And the logs are non-trivial: every estimator appears in each.
    for log in &serial {
        for (name, _) in lineup() {
            assert!(log.contains(name), "{name} missing from log");
        }
    }
}

#[test]
fn empty_snapshot_yields_empty_set() {
    let s = snap(0.0, 100.0, vec![]);
    for (name, mut est) in lineup() {
        let set = est.estimates(&s);
        assert!(
            set.is_empty(),
            "{name} invented estimates: {:?}",
            set.to_vec()
        );
        assert!(!set.truncated(), "{name} truncated an empty prediction");
    }
}

#[test]
fn fresh_lone_query_estimates_cost_over_rate() {
    // A just-started query alone in the system, no speed samples yet:
    // every estimator's model collapses to `t = c / C` — except the
    // future-visibility PI, which deliberately adds predicted load.
    let s = snap(0.0, 100.0, vec![state(7, 500.0, 0.0, None)]);
    for (name, mut est) in lineup() {
        let v = est.estimates(&s).get(7).expect(name);
        if name == "multi/future" {
            assert!(v >= 5.0 - 1e-9, "{name}: {v} below the no-arrivals bound");
        } else {
            assert!((v - 5.0).abs() < 1e-9, "{name}: expected 5.0, got {v}");
        }
    }
}

#[test]
fn observed_path_returns_identical_sets() {
    // Mid-run snapshot with enough variety to exercise every code path:
    // warm speeds, a cold query, a queue.
    let mut s = snap(
        20.0,
        100.0,
        vec![
            state(1, 400.0, 600.0, Some(35.0)),
            state(2, 90.0, 10.0, None),
            state(3, 250.0, 250.0, Some(50.0)),
        ],
    );
    s.running[1].started = 18.0;
    s.queued.push(QueuedState {
        id: 4,
        name: "w".into(),
        weight: 1.0,
        arrived: 19.0,
        est_cost: 300.0,
    });
    for obs in [Obs::disabled(), Obs::enabled()] {
        for (name, mut est) in lineup() {
            // Stateful estimators must see the same history on both paths.
            let mut twin = lineup()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, e)| e)
                .unwrap();
            let plain = est.estimates(&s);
            let observed = twin.estimates_observed(&s, &obs);
            let norm = |set: &mqpi_core::EstimateSet| {
                let mut v: Vec<(u64, f64)> = set.iter().collect();
                v.sort_by_key(|&(id, _)| id);
                v
            };
            assert_eq!(
                norm(&plain),
                norm(&observed),
                "{name}: observed path changed the estimates"
            );
            assert_eq!(plain.truncated(), observed.truncated(), "{name}");
            assert_eq!(plain.degraded(), observed.degraded(), "{name}");
        }
    }
    // And the observed path actually observed: events landed on the handle.
    let obs = Obs::enabled();
    let mut pi = SingleQueryPi::new();
    let set = Estimator::estimates_observed(&mut pi, &s, &obs);
    assert_eq!(obs.events_len(), set.len());
    assert_eq!(obs.counter("core.estimates.emitted"), set.len() as u64);
}
