//! Property-based tests at the estimator layer: whatever an arbitrary
//! seeded fault plan does to the scheduler underneath, every value the
//! single- and multi-query PIs hand to callers is finite and non-negative
//! (the sanitizer's graceful-degradation contract).

// Test code: unwrap/expect on known-good fixtures is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use mqpi_core::{MultiQueryPi, PercentDonePi, SingleQueryPi, TimeFractionPi, Visibility};
use mqpi_sim::job::SyntheticJob;
use mqpi_sim::system::{ErrorPolicy, StepMode, System, SystemConfig};
use mqpi_sim::{AdmissionPolicy, FaultMix, FaultPlan};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn estimates_stay_finite_and_non_negative_under_faults(
        seed in any::<u64>(),
        per_kind in 0usize..5,
        costs in prop::collection::vec(200u64..3000, 2..8),
        slots in 1usize..5,
    ) {
        let mut sys = System::new(SystemConfig {
            rate: 100.0,
            quantum_units: 8.0,
            admission: AdmissionPolicy::MaxConcurrent(slots),
            speed_tau: 10.0,
            step_mode: StepMode::Quantum,
            ..Default::default()
        });
        for (i, c) in costs.iter().enumerate() {
            sys.submit(format!("q{i}"), Box::new(SyntheticJob::new(*c)), 1.0);
        }
        sys.set_error_policy(ErrorPolicy::Isolate);
        sys.install_faults(FaultPlan::generate(seed, 200.0, &FaultMix::even(per_kind)));

        let single = SingleQueryPi::new();
        let multi = MultiQueryPi::new(Visibility::with_queue(Some(slots)));
        let pct = PercentDonePi::new();
        let tf = TimeFractionPi::new();
        let mut steps = 0usize;
        while sys.has_work() {
            // Sample every few steps to keep the test fast while still
            // hitting snapshots right after fault events.
            if steps.is_multiple_of(4) {
                let snap = sys.snapshot();
                for set in [single.estimates(&snap), multi.estimates(&snap)] {
                    for (id, v) in set.iter() {
                        prop_assert!(
                            v.is_finite() && v >= 0.0,
                            "estimate {v} for query {id} at t={}",
                            snap.time
                        );
                    }
                }
                for r in &snap.running {
                    for f in [pct.fraction(&snap, r.id), tf.fraction(&snap, r.id)]
                        .into_iter()
                        .flatten()
                    {
                        prop_assert!(
                            (0.0..=1.0).contains(&f),
                            "fraction {f} for query {} at t={}",
                            r.id,
                            snap.time
                        );
                    }
                }
            }
            sys.step().map_err(|e| {
                TestCaseError::fail(format!("step errored under Isolate: {e}"))
            })?;
            steps += 1;
            prop_assert!(steps < 1_000_000, "runaway simulation");
        }
    }
}
