//! Closing the loop: the multi-query PI's predictions (fluid model over a
//! live snapshot) must match what the discrete scheduler actually does,
//! when Assumption 2 holds (synthetic jobs report exact costs).

// Test code: unwrap/expect on known-good fixtures is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use mqpi_core::{MultiQueryPi, Visibility};
use mqpi_sim::job::SyntheticJob;
use mqpi_sim::system::{System, SystemConfig};
use mqpi_sim::AdmissionPolicy;

fn build(costs: &[u64], weights: &[f64], slots: Option<usize>, quantum: f64) -> (System, Vec<u64>) {
    let mut cfg = SystemConfig {
        rate: 100.0,
        quantum_units: quantum,
        ..Default::default()
    };
    if let Some(k) = slots {
        cfg.admission = AdmissionPolicy::MaxConcurrent(k);
    }
    let mut sys = System::new(cfg);
    let ids = costs
        .iter()
        .zip(weights)
        .map(|(c, w)| sys.submit("q", Box::new(SyntheticJob::new(*c)), *w))
        .collect();
    (sys, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// With exact costs and no admission limit, the PI's time-0 estimate
    /// for every query matches the scheduler's actual finish time within
    /// quantum-discretization tolerance.
    #[test]
    fn pi_predicts_scheduler_exactly_under_assumptions(
        costs in prop::collection::vec(100u64..4000, 2..8),
        wsel in prop::collection::vec(0usize..3, 8),
    ) {
        let weights: Vec<f64> = (0..costs.len())
            .map(|i| [1.0, 2.0, 4.0][wsel[i % wsel.len()]])
            .collect();
        let (mut sys, ids) = build(&costs, &weights, None, 2.0);
        let pi = MultiQueryPi::new(Visibility::concurrent_only());
        let snap = sys.snapshot();
        let est: Vec<f64> = ids
            .iter()
            .map(|id| pi.estimate(&snap, *id).unwrap())
            .collect();
        sys.run_until_idle(1e9).unwrap();
        let tol = 2.0 * costs.len() as f64 * 2.0 / 100.0 + 0.5;
        for (id, e) in ids.iter().zip(&est) {
            let actual = sys.finished_record(*id).unwrap().finished;
            prop_assert!(
                (actual - e).abs() < tol,
                "query {id}: predicted {e}, actual {actual} (tol {tol})"
            );
        }
    }

    /// Queue-aware estimates match the scheduler when an admission limit
    /// forces queueing.
    #[test]
    fn queue_aware_pi_matches_scheduler_with_admission_limit(
        costs in prop::collection::vec(100u64..3000, 3..8),
        slots in 1usize..3,
    ) {
        let weights = vec![1.0; costs.len()];
        let (mut sys, ids) = build(&costs, &weights, Some(slots), 2.0);
        let pi = MultiQueryPi::new(Visibility::with_queue(Some(slots)));
        let snap = sys.snapshot();
        let est: Vec<Option<f64>> = ids.iter().map(|id| pi.estimate(&snap, *id)).collect();
        sys.run_until_idle(1e9).unwrap();
        let tol = 2.0 * costs.len() as f64 * 2.0 / 100.0 + 1.0;
        for (id, e) in ids.iter().zip(&est) {
            let e = e.expect("queue-aware PI estimates queued queries too");
            let actual = sys.finished_record(*id).unwrap().finished;
            prop_assert!(
                (actual - e).abs() < tol,
                "query {id}: predicted {e}, actual {actual} (tol {tol}, slots {slots})"
            );
        }
    }

    /// Estimates refresh correctly mid-run: re-estimating halfway through
    /// still matches the remaining actual time.
    #[test]
    fn mid_run_estimates_stay_calibrated(
        costs in prop::collection::vec(500u64..4000, 2..6),
    ) {
        let weights = vec![1.0; costs.len()];
        let (mut sys, ids) = build(&costs, &weights, None, 2.0);
        let total: u64 = costs.iter().sum();
        let halfway = total as f64 / 100.0 / 2.0;
        sys.run_until(halfway).unwrap();
        let pi = MultiQueryPi::new(Visibility::concurrent_only());
        let snap = sys.snapshot();
        let est: Vec<(u64, f64)> = snap
            .running
            .iter()
            .map(|q| (q.id, pi.estimate(&snap, q.id).unwrap()))
            .collect();
        let t_mid = sys.now();
        sys.run_until_idle(1e9).unwrap();
        let tol = 2.0 * costs.len() as f64 * 2.0 / 100.0 + 0.5;
        for (id, e) in est {
            let actual = sys.finished_record(id).unwrap().finished - t_mid;
            prop_assert!(
                (actual - e).abs() < tol,
                "query {id} mid-run: predicted {e}, actual {actual}"
            );
        }
        let _ = ids;
    }
}
