//! Verifies the batch-estimation contract: one [`mqpi_core::fluid::predict`]
//! invocation covers a whole driver tick, no matter how many queries the
//! tick looks up.
//!
//! This file deliberately holds a single test: the invocation counter is
//! process-global, and a lone test keeps the count attributable.

// Test code: unwrap/expect on known-good fixtures is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use mqpi_core::fluid::predict_invocations;
use mqpi_core::{MultiQueryPi, Visibility};
use mqpi_sim::system::{QueryState, QueuedState, SystemSnapshot};

fn state(id: u64, remaining: f64) -> QueryState {
    QueryState {
        id,
        name: format!("q{id}").into(),
        weight: 1.0,
        arrived: 0.0,
        started: 0.0,
        done: 0.0,
        remaining,
        initial_estimate: remaining,
        observed_speed: Some(10.0),
        blocked: false,
        rolling_back: false,
    }
}

#[test]
fn a_driver_tick_runs_exactly_one_prediction() {
    let snap = SystemSnapshot {
        time: 0.0,
        rate: 100.0,
        running: (1..=10).map(|i| state(i, 100.0 * i as f64)).collect(),
        queued: vec![QueuedState {
            id: 99,
            name: "q99".into(),
            weight: 1.0,
            arrived: 0.0,
            est_cost: 250.0,
        }],
    };
    let pi = MultiQueryPi::new(Visibility::with_queue(Some(10)));

    // A driver tick: one `estimates` pass, then per-query lookups.
    let before = predict_invocations();
    let set = pi.estimates(&snap);
    assert_eq!(
        predict_invocations() - before,
        1,
        "a tick must run the fluid predictor exactly once"
    );

    // The single pass covered every running and queued query; lookups are
    // O(1) map hits, not further predictions.
    let before = predict_invocations();
    for i in 1..=10u64 {
        assert!(set.get(i).is_some(), "missing estimate for running q{i}");
    }
    assert!(set.get(99).is_some(), "missing estimate for queued q99");
    assert_eq!(predict_invocations(), before);

    // The per-query convenience wrapper costs one prediction per call —
    // which is why driver loops use `estimates` instead.
    let before = predict_invocations();
    let _ = pi.estimate(&snap, 1);
    let _ = pi.estimate(&snap, 2);
    assert_eq!(predict_invocations() - before, 2);
}
