//! Adaptive correction of future-workload information (§5.2.3, Figs. 8-10).
//!
//! The multi-query PI is given approximate statistics about future arrivals
//! (λ′, c̄′). The paper stresses that these need not be accurate, because
//! the PI "detects when its estimates were wrong and then adapts". The
//! estimator here implements that: the prior λ′ is treated as
//! `λ′ · prior_time` pseudo-arrivals observed over `prior_time` seconds and
//! blended with actually observed arrivals — a conjugate (Gamma-Poisson)
//! update, so the estimate converges to the true rate as evidence
//! accumulates while still using the prior early on.

use mqpi_ckpt::{CkptError, Dec, Enc};

/// Online arrival-rate estimator with a prior.
#[derive(Debug, Clone)]
pub struct ArrivalRateEstimator {
    prior_events: f64,
    prior_time: f64,
    observed_events: f64,
    observed_time: f64,
}

impl ArrivalRateEstimator {
    /// Prior rate `lambda_prior` held with the strength of `prior_time`
    /// seconds of (pseudo-)observation.
    pub fn new(lambda_prior: f64, prior_time: f64) -> Self {
        assert!(lambda_prior >= 0.0 && prior_time > 0.0);
        ArrivalRateEstimator {
            prior_events: lambda_prior * prior_time,
            prior_time,
            observed_events: 0.0,
            observed_time: 0.0,
        }
    }

    /// Record that `events` arrivals were seen during `dt` seconds.
    pub fn observe(&mut self, dt: f64, events: u64) {
        assert!(dt >= 0.0);
        self.observed_time += dt;
        self.observed_events += events as f64;
    }

    /// Current rate estimate.
    pub fn lambda(&self) -> f64 {
        (self.prior_events + self.observed_events) / (self.prior_time + self.observed_time)
    }

    /// Total observation time so far (excluding the prior).
    pub fn observed_time(&self) -> f64 {
        self.observed_time
    }

    /// Serialize for crash-safe checkpoints (bit-exact: floats travel as
    /// IEEE-754 bit patterns).
    pub fn encode(&self, e: &mut Enc) {
        e.put_f64(self.prior_events);
        e.put_f64(self.prior_time);
        e.put_f64(self.observed_events);
        e.put_f64(self.observed_time);
    }

    /// Rebuild from [`ArrivalRateEstimator::encode`] bytes.
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, CkptError> {
        let prior_events = d.get_f64()?;
        let prior_time = d.get_f64()?;
        let observed_events = d.get_f64()?;
        let observed_time = d.get_f64()?;
        if prior_time.is_nan() || prior_time <= 0.0 {
            return Err(CkptError::Corrupt(format!(
                "non-positive prior_time {prior_time} in arrival-rate state"
            )));
        }
        Ok(ArrivalRateEstimator {
            prior_events,
            prior_time,
            observed_events,
            observed_time,
        })
    }
}

/// Online mean-cost estimator with a prior, used the same way for c̄′.
#[derive(Debug, Clone)]
pub struct MeanCostEstimator {
    sum: f64,
    count: f64,
}

impl MeanCostEstimator {
    /// Prior mean held with the strength of `prior_count` pseudo-samples.
    pub fn new(prior_mean: f64, prior_count: f64) -> Self {
        assert!(prior_count > 0.0);
        MeanCostEstimator {
            sum: prior_mean * prior_count,
            count: prior_count,
        }
    }

    /// Record one observed query cost.
    pub fn observe(&mut self, cost: f64) {
        self.sum += cost;
        self.count += 1.0;
    }

    /// Current mean estimate.
    pub fn mean(&self) -> f64 {
        self.sum / self.count
    }

    /// Serialize for crash-safe checkpoints.
    pub fn encode(&self, e: &mut Enc) {
        e.put_f64(self.sum);
        e.put_f64(self.count);
    }

    /// Rebuild from [`MeanCostEstimator::encode`] bytes.
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, CkptError> {
        let sum = d.get_f64()?;
        let count = d.get_f64()?;
        if count.is_nan() || count <= 0.0 {
            return Err(CkptError::Corrupt(format!(
                "non-positive sample count {count} in mean-cost state"
            )));
        }
        Ok(MeanCostEstimator { sum, count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_the_prior() {
        let e = ArrivalRateEstimator::new(0.05, 60.0);
        assert!((e.lambda() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn converges_to_observed_rate() {
        // Prior says 0.15; reality is 0.03.
        let mut e = ArrivalRateEstimator::new(0.15, 60.0);
        for _ in 0..100 {
            e.observe(100.0, 3); // 3 per 100s = 0.03
        }
        assert!((e.lambda() - 0.03).abs() < 0.002, "λ = {}", e.lambda());
    }

    #[test]
    fn early_evidence_moves_partway() {
        let mut e = ArrivalRateEstimator::new(0.15, 60.0);
        e.observe(60.0, 2); // observed ≈ 0.033 over one prior-length window
        let l = e.lambda();
        assert!(l < 0.15 && l > 0.03, "λ = {l}");
    }

    #[test]
    fn zero_prior_rate_is_allowed() {
        let mut e = ArrivalRateEstimator::new(0.0, 30.0);
        assert_eq!(e.lambda(), 0.0);
        e.observe(10.0, 4);
        assert!(e.lambda() > 0.0);
    }

    #[test]
    fn mean_cost_estimator_blends() {
        let mut m = MeanCostEstimator::new(1000.0, 3.0);
        assert_eq!(m.mean(), 1000.0);
        for _ in 0..30 {
            m.observe(200.0);
        }
        assert!(m.mean() < 300.0 && m.mean() > 200.0);
    }
}
