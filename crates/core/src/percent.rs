//! Percentage-of-completion indicators.
//!
//! The paper's §2 notes that the Chaudhuri et al. PIs [4, 6] "predict only
//! percentage of completion, not remaining query execution time". This
//! module provides that family for completeness — and a multi-query twist:
//! the *time-weighted* fraction, which divides elapsed-equivalent progress
//! by the fluid-model completion time, so a GUI bar advances linearly in
//! wall-clock terms rather than in work terms.

use mqpi_sim::system::SystemSnapshot;

use crate::fluid::{predict, FluidQuery};
use crate::sanitize::sanitize_fraction;

/// Work-fraction indicator: `done / (done + remaining)` — the classic
/// single-query "percent complete" (no time model at all).
#[derive(Debug, Clone, Default)]
pub struct PercentDonePi;

impl PercentDonePi {
    /// Create the indicator.
    pub fn new() -> Self {
        PercentDonePi
    }

    /// Fraction complete in `[0, 1]` for query `id`.
    pub fn fraction(&self, snap: &SystemSnapshot, id: u64) -> Option<f64> {
        let q = snap.running.iter().find(|r| r.id == id)?;
        let total = q.done + q.remaining;
        if total <= 0.0 {
            return Some(0.0);
        }
        // The sanitizer also absorbs NaN, which `clamp` would pass through.
        Some(sanitize_fraction(q.done / total).0)
    }
}

/// Time-fraction indicator: uses the multi-query fluid model to convert
/// work progress into *time* progress, `elapsed / (elapsed + predicted
/// remaining)`. Under concurrency the two differ: a query at 50% of its
/// work may be far earlier than 50% of its wall-clock life if the system
/// is about to drain.
#[derive(Debug, Clone, Default)]
pub struct TimeFractionPi;

impl TimeFractionPi {
    /// Create the indicator.
    pub fn new() -> Self {
        TimeFractionPi
    }

    /// Fraction of the query's total wall-clock life elapsed, per the
    /// multi-query fluid model.
    pub fn fraction(&self, snap: &SystemSnapshot, id: u64) -> Option<f64> {
        let q = snap.running.iter().find(|r| r.id == id && !r.blocked)?;
        let elapsed = (snap.time - q.started).max(0.0);
        let running: Vec<FluidQuery> = snap
            .running
            .iter()
            .filter(|r| !r.blocked)
            .map(|r| FluidQuery {
                id: r.id,
                cost: r.remaining,
                weight: r.weight,
            })
            .collect();
        let p = predict(&running, &[], None, None, snap.rate);
        let remaining = p.remaining_for(id)?;
        let total = elapsed + remaining;
        if total <= 0.0 {
            return Some(1.0);
        }
        Some(sanitize_fraction(elapsed / total).0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqpi_sim::system::{QueryState, SystemSnapshot};

    fn state(id: u64, done: f64, remaining: f64, started: f64) -> QueryState {
        QueryState {
            id,
            name: format!("q{id}").into(),
            weight: 1.0,
            arrived: started,
            started,
            done,
            remaining,
            initial_estimate: done + remaining,
            observed_speed: Some(10.0),
            blocked: false,
            rolling_back: false,
        }
    }

    fn snap(t: f64, running: Vec<QueryState>) -> SystemSnapshot {
        SystemSnapshot {
            time: t,
            rate: 100.0,
            running,
            queued: vec![],
        }
    }

    #[test]
    fn work_fraction_is_done_over_total() {
        let s = snap(10.0, vec![state(1, 30.0, 70.0, 0.0)]);
        let f = PercentDonePi::new().fraction(&s, 1).unwrap();
        assert!((f - 0.3).abs() < 1e-12);
        assert!(PercentDonePi::new().fraction(&s, 9).is_none());
    }

    #[test]
    fn time_fraction_differs_from_work_fraction_under_concurrency() {
        // Query 1 is halfway through its work, but a big query hogs half
        // the machine and will keep doing so until q1 finishes: work
        // fraction 0.5, and the time model agrees on the remaining time
        // (200/50 = 4s vs 2s elapsed ⇒ 1/3).
        let s = snap(
            2.0,
            vec![state(1, 200.0, 200.0, 0.0), state(2, 0.0, 5000.0, 0.0)],
        );
        let work = PercentDonePi::new().fraction(&s, 1).unwrap();
        let time = TimeFractionPi::new().fraction(&s, 1).unwrap();
        assert!((work - 0.5).abs() < 1e-12);
        assert!((time - 2.0 / 6.0).abs() < 1e-9, "time fraction = {time}");
    }

    #[test]
    fn fractions_are_clamped() {
        let s = snap(100.0, vec![state(1, 10.0, 0.0, 0.0)]);
        let t = TimeFractionPi::new().fraction(&s, 1).unwrap();
        assert!((0.0..=1.0).contains(&t));
    }
}
