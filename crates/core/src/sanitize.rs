//! Output sanitization: the graceful-degradation contract.
//!
//! A progress indicator is only useful if it *never* reports garbage, no
//! matter how badly the paper's Assumptions 1–3 are being violated
//! underneath it (cost-estimate noise, rate dips, aborts, bursts). Every
//! estimator output funnels through this module before a caller can see
//! it: remaining times are finite and non-negative, fractions sit in
//! `[0, 1]`, percentages in `[0, 100]`. Each function returns the value
//! plus whether it had to be degraded, so campaigns can count how often
//! the raw math went out of range.

/// Cap applied to non-finite remaining-time estimates: far beyond any
/// simulated horizon, yet finite so downstream arithmetic stays sane.
pub const MAX_REMAINING_SECONDS: f64 = 1e12;

/// Sanitize a remaining-time estimate in seconds. `NaN` and `+∞` become
/// the pessimistic [`MAX_REMAINING_SECONDS`] cap (an unknown remaining
/// time is *long*, not zero); negative values (including `−∞`) clamp to 0.
pub fn sanitize_seconds(raw: f64) -> (f64, bool) {
    if raw.is_nan() || raw == f64::INFINITY {
        (MAX_REMAINING_SECONDS, true)
    } else if raw < 0.0 {
        (0.0, true)
    } else if raw > MAX_REMAINING_SECONDS {
        (MAX_REMAINING_SECONDS, true)
    } else {
        (raw, false)
    }
}

/// Sanitize a completion fraction into `[0, 1]`. `NaN` becomes 0 (claim no
/// progress rather than invented progress).
pub fn sanitize_fraction(raw: f64) -> (f64, bool) {
    // NaN and negative both degrade to 0: claim no progress rather than
    // invented progress.
    if raw.is_nan() || raw < 0.0 {
        (0.0, true)
    } else if raw > 1.0 {
        (1.0, true)
    } else {
        (raw, false)
    }
}

/// Sanitize a percentage into `[0, 100]`.
pub fn sanitize_percent(raw: f64) -> (f64, bool) {
    let (f, degraded) = sanitize_fraction(raw / 100.0);
    (f * 100.0, degraded)
}

/// Counted variant of [`sanitize_seconds`]: a degradation also increments
/// the metrics registry (`core.sanitize.degraded` plus the per-shape
/// counter `core.sanitize.seconds_degraded`), so campaigns can read repair
/// totals from the same place as every other counter.
pub fn sanitize_seconds_counted(raw: f64, obs: &mqpi_obs::Obs) -> (f64, bool) {
    let out = sanitize_seconds(raw);
    count_degraded(out.1, obs, "core.sanitize.seconds_degraded");
    out
}

/// Counted variant of [`sanitize_fraction`] (see
/// [`sanitize_seconds_counted`]).
pub fn sanitize_fraction_counted(raw: f64, obs: &mqpi_obs::Obs) -> (f64, bool) {
    let out = sanitize_fraction(raw);
    count_degraded(out.1, obs, "core.sanitize.fraction_degraded");
    out
}

/// Counted variant of [`sanitize_percent`] (see
/// [`sanitize_seconds_counted`]).
pub fn sanitize_percent_counted(raw: f64, obs: &mqpi_obs::Obs) -> (f64, bool) {
    let out = sanitize_percent(raw);
    count_degraded(out.1, obs, "core.sanitize.percent_degraded");
    out
}

fn count_degraded(degraded: bool, obs: &mqpi_obs::Obs, shape: &'static str) {
    if degraded && obs.is_enabled() {
        obs.counter_add("core.sanitize.degraded", 1);
        obs.counter_add(shape, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_pass_through_when_sane() {
        assert_eq!(sanitize_seconds(0.0), (0.0, false));
        assert_eq!(sanitize_seconds(123.5), (123.5, false));
        assert_eq!(
            sanitize_seconds(MAX_REMAINING_SECONDS),
            (MAX_REMAINING_SECONDS, false)
        );
    }

    #[test]
    fn seconds_degrade_nan_inf_and_negative() {
        assert_eq!(sanitize_seconds(f64::NAN), (MAX_REMAINING_SECONDS, true));
        assert_eq!(
            sanitize_seconds(f64::INFINITY),
            (MAX_REMAINING_SECONDS, true)
        );
        assert_eq!(sanitize_seconds(f64::NEG_INFINITY), (0.0, true));
        assert_eq!(sanitize_seconds(-1.0), (0.0, true));
        assert_eq!(sanitize_seconds(1e15), (MAX_REMAINING_SECONDS, true));
    }

    #[test]
    fn fractions_clamp_to_unit_interval() {
        assert_eq!(sanitize_fraction(0.5), (0.5, false));
        assert_eq!(sanitize_fraction(-0.1), (0.0, true));
        assert_eq!(sanitize_fraction(1.7), (1.0, true));
        assert_eq!(sanitize_fraction(f64::NAN), (0.0, true));
    }

    #[test]
    fn percent_clamps_to_0_100() {
        assert_eq!(sanitize_percent(42.0), (42.0, false));
        assert_eq!(sanitize_percent(130.0), (100.0, true));
        assert_eq!(sanitize_percent(-5.0), (0.0, true));
        assert_eq!(sanitize_percent(f64::NAN), (0.0, true));
    }

    #[test]
    fn counted_seconds_edge_cases_increment_registry() {
        let obs = mqpi_obs::Obs::enabled();
        // NaN / ±∞ / negative / beyond-cap all degrade and count.
        assert_eq!(
            sanitize_seconds_counted(f64::NAN, &obs),
            (MAX_REMAINING_SECONDS, true)
        );
        assert_eq!(
            sanitize_seconds_counted(f64::INFINITY, &obs),
            (MAX_REMAINING_SECONDS, true)
        );
        assert_eq!(
            sanitize_seconds_counted(f64::NEG_INFINITY, &obs),
            (0.0, true)
        );
        assert_eq!(sanitize_seconds_counted(-0.5, &obs), (0.0, true));
        assert_eq!(
            sanitize_seconds_counted(MAX_REMAINING_SECONDS * 2.0, &obs),
            (MAX_REMAINING_SECONDS, true)
        );
        assert_eq!(obs.counter("core.sanitize.degraded"), 5);
        assert_eq!(obs.counter("core.sanitize.seconds_degraded"), 5);
        // Cap boundary and clean values pass through uncounted.
        assert_eq!(
            sanitize_seconds_counted(MAX_REMAINING_SECONDS, &obs),
            (MAX_REMAINING_SECONDS, false)
        );
        assert_eq!(sanitize_seconds_counted(0.0, &obs), (0.0, false));
        assert_eq!(sanitize_seconds_counted(12.5, &obs), (12.5, false));
        assert_eq!(obs.counter("core.sanitize.degraded"), 5);
    }

    #[test]
    fn counted_fraction_and_percent_share_the_total() {
        let obs = mqpi_obs::Obs::enabled();
        assert_eq!(sanitize_fraction_counted(1.7, &obs), (1.0, true));
        assert_eq!(sanitize_fraction_counted(-0.1, &obs), (0.0, true));
        assert_eq!(sanitize_fraction_counted(f64::NAN, &obs), (0.0, true));
        assert_eq!(sanitize_percent_counted(130.0, &obs), (100.0, true));
        assert_eq!(sanitize_percent_counted(50.0, &obs), (50.0, false));
        assert_eq!(obs.counter("core.sanitize.fraction_degraded"), 3);
        assert_eq!(obs.counter("core.sanitize.percent_degraded"), 1);
        assert_eq!(obs.counter("core.sanitize.degraded"), 4);
    }

    #[test]
    fn counted_variants_are_noops_when_disabled() {
        let obs = mqpi_obs::Obs::disabled();
        assert_eq!(
            sanitize_seconds_counted(f64::NAN, &obs),
            (MAX_REMAINING_SECONDS, true)
        );
        assert_eq!(sanitize_fraction_counted(-1.0, &obs), (0.0, true));
        assert_eq!(obs.counter("core.sanitize.degraded"), 0);
    }
}
