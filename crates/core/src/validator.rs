//! Debug-mode invariant validation of PI state.
//!
//! The chaos harness (and any driver that wants the checks) feeds every
//! `System` snapshot and the estimates derived from it into an
//! [`InvariantValidator`]. The validator accumulates [`Violation`]s rather
//! than panicking, so a campaign can complete and report *all* breakage:
//!
//! * virtual time is monotone across observations;
//! * every estimate is finite and non-negative (the sanitizer's contract);
//! * estimates reference only queries present in the snapshot, and ids are
//!   consistent between the running set and the queue (queue-position
//!   consistency — an aborted queued query must vanish the same tick);
//! * per-query work done never decreases (absent an abort/rollback, which
//!   legitimately swaps the job out);
//! * remaining-time estimates decrease by the elapsed interval, within a
//!   slack, on intervals with no arrivals, no blocking changes, and no
//!   injected faults (remaining-time monotonicity);
//! * work is conserved across abort → rollback → retry
//!   ([`InvariantValidator::check_conservation`]).

use std::collections::{HashMap, HashSet};

use mqpi_sim::system::{FinishedQuery, SystemSnapshot};

use crate::estimate::EstimateSet;

/// One invariant breach, with enough context to debug it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Virtual time of the observation that caught it.
    pub at: f64,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

/// What the validator may assume about the interval since the previous
/// observation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValidationContext {
    /// A fault (cost noise, rate dip, abort, burst, page fault) fired in
    /// the interval: estimate jumps are expected, so the remaining-time
    /// monotonicity rule is suspended for this observation.
    pub faults_in_interval: bool,
    /// Enable the remaining-time monotonicity rule. Only meaningful for
    /// estimators whose model sees the whole system (the multi-query PI);
    /// single-query estimates fluctuate with observed speed by design.
    pub check_monotonicity: bool,
}

/// Accumulates invariant violations across a run.
#[derive(Debug, Clone)]
pub struct InvariantValidator {
    /// Absolute tolerance (seconds) for the monotonicity rule, covering
    /// quantum discretization.
    slack: f64,
    last_time: Option<f64>,
    last_estimates: HashMap<u64, f64>,
    /// Ids visible (running ∪ queued) at the previous observation.
    last_ids: HashSet<u64>,
    /// Per-running-query (done, blocked, rolling_back) at the previous
    /// observation.
    last_running: HashMap<u64, (f64, bool, bool)>,
    violations: Vec<Violation>,
    /// Observability handle: every violation is also emitted as a
    /// `violation` trace event and counted under
    /// `core.validator.violations`, so fail-on-violation checks can read
    /// from the metrics registry instead of re-walking the list.
    obs: mqpi_obs::Obs,
}

impl Default for InvariantValidator {
    fn default() -> Self {
        Self::new()
    }
}

impl InvariantValidator {
    /// Validator with a default slack of one second.
    pub fn new() -> Self {
        Self::with_slack(1.0)
    }

    /// Validator with an explicit monotonicity slack in seconds (use at
    /// least a few quanta's worth of time).
    pub fn with_slack(slack: f64) -> Self {
        InvariantValidator {
            slack,
            last_time: None,
            last_estimates: HashMap::new(),
            last_ids: HashSet::new(),
            last_running: HashMap::new(),
            violations: Vec::new(),
            obs: mqpi_obs::Obs::disabled(),
        }
    }

    /// Install an observability handle; each subsequent violation also
    /// emits an `violation` trace event and increments
    /// `core.validator.violations`.
    pub fn set_obs(&mut self, obs: mqpi_obs::Obs) {
        self.obs = obs;
    }

    fn violate(&mut self, at: f64, rule: &'static str, detail: String) {
        if self.obs.is_enabled() {
            self.obs
                .emit(at, mqpi_obs::TraceKind::InvariantViolation { rule });
            self.obs.counter_add("core.validator.violations", 1);
        }
        self.violations.push(Violation { at, rule, detail });
    }

    /// Feed one observation: the snapshot and the estimates computed from
    /// it. Call once per sampling tick, in time order.
    pub fn observe(&mut self, snap: &SystemSnapshot, est: &EstimateSet, ctx: ValidationContext) {
        let t = snap.time;

        // Rule: virtual time is monotone.
        if let Some(prev) = self.last_time {
            if t < prev - 1e-9 {
                self.violate(t, "time_monotone", format!("time went back: {prev} -> {t}"));
            }
        }

        // Rule: id consistency inside the snapshot.
        let running_ids: HashSet<u64> = snap.running.iter().map(|r| r.id).collect();
        let queued_ids: HashSet<u64> = snap.queued.iter().map(|q| q.id).collect();
        if running_ids.len() != snap.running.len() {
            self.violate(
                t,
                "duplicate_running_id",
                "running set has duplicate ids".into(),
            );
        }
        if queued_ids.len() != snap.queued.len() {
            self.violate(t, "duplicate_queued_id", "queue has duplicate ids".into());
        }
        for id in running_ids.intersection(&queued_ids) {
            self.violate(
                t,
                "running_and_queued",
                format!("query {id} is both running and queued"),
            );
        }

        // Rule: the queue is FIFO in arrival time.
        for w in snap.queued.windows(2) {
            if w[1].arrived < w[0].arrived - 1e-9 {
                self.violate(
                    t,
                    "queue_fifo",
                    format!(
                        "queue out of arrival order: {} (t={}) before {} (t={})",
                        w[0].id, w[0].arrived, w[1].id, w[1].arrived
                    ),
                );
            }
        }

        let visible: HashSet<u64> = running_ids.union(&queued_ids).copied().collect();

        // Rules: estimates are sane and reference only visible queries.
        for (id, remaining) in est.iter() {
            if !remaining.is_finite() || remaining < 0.0 {
                self.violate(
                    t,
                    "estimate_sane",
                    format!("estimate for {id} is {remaining}"),
                );
            }
            if !visible.contains(&id) {
                self.violate(
                    t,
                    "estimate_for_departed",
                    format!("estimate references query {id} not in the snapshot"),
                );
            }
        }

        // Rule: per-query done never decreases (job swaps from
        // abort/rollback excepted).
        for r in &snap.running {
            if let Some(&(prev_done, _, prev_rolling)) = self.last_running.get(&r.id) {
                let rollback_transition = r.rolling_back != prev_rolling;
                if !rollback_transition && !r.rolling_back && r.done < prev_done - 1e-9 {
                    self.violate(
                        t,
                        "done_monotone",
                        format!("query {} done went back: {prev_done} -> {}", r.id, r.done),
                    );
                }
            }
        }

        // Rule: remaining-time monotonicity on clean intervals — the fluid
        // prediction is self-consistent, so with no arrivals, no admission,
        // no blocking changes, and no faults, the estimate for a query must
        // shrink by the elapsed time (within slack).
        if ctx.check_monotonicity && !ctx.faults_in_interval {
            if let Some(prev_t) = self.last_time {
                let dt = t - prev_t;
                let no_new_ids = visible.iter().all(|id| self.last_ids.contains(id));
                let state_stable = snap.running.iter().all(|r| {
                    self.last_running
                        .get(&r.id)
                        .is_none_or(|&(_, b, rb)| b == r.blocked && rb == r.rolling_back)
                });
                if dt >= 0.0 && no_new_ids && state_stable {
                    for r in snap
                        .running
                        .iter()
                        .filter(|r| !r.blocked && !r.rolling_back)
                    {
                        let (Some(now), Some(prev)) =
                            (est.get(r.id), self.last_estimates.get(&r.id).copied())
                        else {
                            continue;
                        };
                        if now > prev - dt + self.slack {
                            self.violate(
                                t,
                                "remaining_monotone",
                                format!(
                                    "query {}: estimate {prev} -> {now} over dt={dt} \
                                     (expected ≤ {})",
                                    r.id,
                                    prev - dt + self.slack
                                ),
                            );
                        }
                    }
                }
            }
        }

        self.last_time = Some(t);
        self.last_estimates = est.iter().collect();
        self.last_ids = visible;
        self.last_running = snap
            .running
            .iter()
            .map(|r| (r.id, (r.done, r.blocked, r.rolling_back)))
            .collect();
    }

    /// Check the work-conservation ledger: everything the system executed
    /// must be attributed to a live session or a finished record
    /// (`units_done + rollback_units`), within `tol` units.
    pub fn check_conservation(
        &mut self,
        at: f64,
        executed_units: f64,
        live_units_done: f64,
        finished: &[FinishedQuery],
        tol: f64,
    ) {
        let accounted: f64 = live_units_done
            + finished
                .iter()
                .map(|f| f.units_done + f.rollback_units)
                .sum::<f64>();
        if (executed_units - accounted).abs() > tol {
            self.violate(
                at,
                "work_conservation",
                format!("executed {executed_units} units but accounted for {accounted}"),
            );
        }
    }

    /// All violations so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Whether no invariant has been violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serialize the validator's full state for a checkpoint. Maps and
    /// sets are written in sorted key order, so the encoding is canonical.
    /// The obs handle is excluded (re-install via
    /// [`InvariantValidator::set_obs`] after restore).
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut e = mqpi_ckpt::Enc::new();
        e.put_f64(self.slack);
        e.put_opt_f64(self.last_time);
        let mut est: Vec<(u64, f64)> = self.last_estimates.iter().map(|(k, v)| (*k, *v)).collect();
        est.sort_unstable_by_key(|(id, _)| *id);
        e.put_usize(est.len());
        for (id, v) in est {
            e.put_u64(id);
            e.put_f64(v);
        }
        let mut ids: Vec<u64> = self.last_ids.iter().copied().collect();
        ids.sort_unstable();
        e.put_usize(ids.len());
        for id in ids {
            e.put_u64(id);
        }
        let mut running: Vec<(u64, (f64, bool, bool))> =
            self.last_running.iter().map(|(k, v)| (*k, *v)).collect();
        running.sort_unstable_by_key(|(id, _)| *id);
        e.put_usize(running.len());
        for (id, (done, blocked, rolling)) in running {
            e.put_u64(id);
            e.put_f64(done);
            e.put_bool(blocked);
            e.put_bool(rolling);
        }
        e.put_usize(self.violations.len());
        for v in &self.violations {
            e.put_f64(v.at);
            e.put_str(v.rule);
            e.put_str(&v.detail);
        }
        e.into_bytes()
    }

    /// Rebuild a validator from [`InvariantValidator::checkpoint`] bytes.
    /// Rule identifiers are re-interned to `&'static str`; the restored
    /// validator's obs handle is disabled.
    pub fn restore(bytes: &[u8]) -> Result<Self, mqpi_ckpt::CkptError> {
        let mut d = mqpi_ckpt::Dec::new(bytes);
        let slack = d.get_f64()?;
        let last_time = d.get_opt_f64()?;
        let mut v = InvariantValidator::with_slack(slack);
        v.last_time = last_time;
        let n = d.get_usize()?;
        for _ in 0..n {
            let id = d.get_u64()?;
            v.last_estimates.insert(id, d.get_f64()?);
        }
        let n = d.get_usize()?;
        for _ in 0..n {
            v.last_ids.insert(d.get_u64()?);
        }
        let n = d.get_usize()?;
        for _ in 0..n {
            let id = d.get_u64()?;
            let done = d.get_f64()?;
            let blocked = d.get_bool()?;
            let rolling = d.get_bool()?;
            v.last_running.insert(id, (done, blocked, rolling));
        }
        let n = d.get_usize()?;
        for _ in 0..n {
            let at = d.get_f64()?;
            let rule = mqpi_obs::intern(&d.get_str()?);
            let detail = d.get_str()?;
            v.violations.push(Violation { at, rule, detail });
        }
        if !d.is_exhausted() {
            return Err(mqpi_ckpt::CkptError::Corrupt(format!(
                "{} trailing bytes after validator state",
                d.remaining()
            )));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqpi_sim::system::{QueryState, QueuedState};

    fn state(id: u64, done: f64, remaining: f64) -> QueryState {
        QueryState {
            id,
            name: format!("q{id}").into(),
            weight: 1.0,
            arrived: 0.0,
            started: 0.0,
            done,
            remaining,
            initial_estimate: done + remaining,
            observed_speed: Some(10.0),
            blocked: false,
            rolling_back: false,
        }
    }

    fn snap(t: f64, running: Vec<QueryState>, queued: Vec<QueuedState>) -> SystemSnapshot {
        SystemSnapshot {
            time: t,
            rate: 100.0,
            running,
            queued,
        }
    }

    #[test]
    fn clean_progression_stays_clean() {
        let mut v = InvariantValidator::with_slack(0.5);
        let ctx = ValidationContext {
            faults_in_interval: false,
            check_monotonicity: true,
        };
        // One query alone at rate 100: remaining time decreases 1:1.
        for k in 0..5 {
            let t = k as f64;
            let done = 100.0 * t;
            let s = snap(t, vec![state(1, done, 1000.0 - done)], vec![]);
            let est = EstimateSet::from_pairs([(1, (1000.0 - done) / 100.0)], false);
            v.observe(&s, &est, ctx);
        }
        assert!(v.is_clean(), "violations: {:?}", v.violations());
    }

    #[test]
    fn flags_time_regression_and_bad_estimates() {
        let mut v = InvariantValidator::new();
        let ctx = ValidationContext::default();
        let s1 = snap(5.0, vec![state(1, 0.0, 100.0)], vec![]);
        // Bypass from_pairs sanitization to simulate estimator garbage:
        // hand-build the set through serde-independent constructor paths.
        let est = EstimateSet::from_pairs([(1, 1.0), (9, 2.0)], false);
        v.observe(&s1, &est, ctx);
        let s2 = snap(4.0, vec![state(1, 10.0, 90.0)], vec![]);
        v.observe(&s2, &EstimateSet::new(), ctx);
        let rules: Vec<&str> = v.violations().iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"estimate_for_departed"), "{rules:?}");
        assert!(rules.contains(&"time_monotone"), "{rules:?}");
    }

    #[test]
    fn flags_estimate_growth_on_clean_interval_only() {
        let grow = |faults: bool| {
            let mut v = InvariantValidator::with_slack(0.1);
            let ctx = ValidationContext {
                faults_in_interval: faults,
                check_monotonicity: true,
            };
            let s1 = snap(0.0, vec![state(1, 0.0, 1000.0)], vec![]);
            v.observe(&s1, &EstimateSet::from_pairs([(1, 10.0)], false), ctx);
            let s2 = snap(1.0, vec![state(1, 100.0, 900.0)], vec![]);
            // Estimate *grew* with no arrivals: a violation unless a fault
            // fired in the interval.
            v.observe(&s2, &EstimateSet::from_pairs([(1, 50.0)], false), ctx);
            v.is_clean()
        };
        assert!(!grow(false));
        assert!(grow(true));
    }

    #[test]
    fn flags_queue_inconsistency() {
        let mut v = InvariantValidator::new();
        let q = QueuedState {
            id: 1,
            name: "dup".into(),
            weight: 1.0,
            arrived: 0.0,
            est_cost: 10.0,
        };
        let s = snap(0.0, vec![state(1, 0.0, 100.0)], vec![q]);
        v.observe(&s, &EstimateSet::new(), ValidationContext::default());
        assert!(v
            .violations()
            .iter()
            .any(|x| x.rule == "running_and_queued"));
    }

    #[test]
    fn violations_surface_as_trace_events_and_counter() {
        let obs = mqpi_obs::Obs::enabled();
        let mut v = InvariantValidator::new();
        v.set_obs(obs.clone());
        v.observe(
            &snap(5.0, vec![], vec![]),
            &EstimateSet::new(),
            ValidationContext::default(),
        );
        v.observe(
            &snap(4.0, vec![], vec![]),
            &EstimateSet::new(),
            ValidationContext::default(),
        );
        v.check_conservation(4.0, 100.0, 0.0, &[], 1e-6);
        assert_eq!(v.violations().len(), 2);
        assert_eq!(obs.counter("core.validator.violations"), 2);
        let trace = obs.render_trace();
        assert_eq!(
            trace,
            "t=4 violation rule=time_monotone\nt=4 violation rule=work_conservation\n"
        );
    }

    #[test]
    fn checkpoint_restore_continues_identically() {
        let drive = |v: &mut InvariantValidator, range: std::ops::Range<u64>| {
            let ctx = ValidationContext {
                faults_in_interval: false,
                check_monotonicity: true,
            };
            for k in range {
                let t = k as f64;
                let done = 100.0 * t;
                let s = snap(t, vec![state(1, done, 1000.0 - done)], vec![]);
                // The estimate grows at t=3 → one deliberate violation.
                let est_t = if k == 3 {
                    99.0
                } else {
                    (1000.0 - done) / 100.0
                };
                v.observe(&s, &EstimateSet::from_pairs([(1, est_t)], false), ctx);
            }
        };
        let mut straight = InvariantValidator::with_slack(0.5);
        drive(&mut straight, 0..8);
        let mut first = InvariantValidator::with_slack(0.5);
        drive(&mut first, 0..4);
        let mut resumed = InvariantValidator::restore(&first.checkpoint()).unwrap();
        drive(&mut resumed, 4..8);
        assert_eq!(
            format!("{:?}", resumed.violations()),
            format!("{:?}", straight.violations())
        );
        assert_eq!(resumed.checkpoint(), straight.checkpoint());
        assert!(InvariantValidator::restore(&[1, 2, 3]).is_err());
    }

    #[test]
    fn conservation_check_balances() {
        let mut v = InvariantValidator::new();
        v.check_conservation(10.0, 500.0, 200.0, &[], 1e-6);
        assert!(!v.is_clean());
        let mut v = InvariantValidator::new();
        v.check_conservation(10.0, 200.0, 200.0, &[], 1e-6);
        assert!(v.is_clean());
    }
}
