//! Observability bridge for the estimators.
//!
//! One helper turns a finished [`EstimateSet`] into its observable
//! footprint: an `estimate` trace event per query (sorted by query id —
//! [`EstimateSet`] is hash-indexed, and trace output must be byte-stable),
//! a profiling span over the prediction pass, and sanitizer/emission
//! counters. Both PIs expose `estimates_observed` wrappers built on it;
//! the plain `estimates` methods stay observation-free so hot callers that
//! never trace pay nothing.

use mqpi_obs::{Obs, TraceKind};

use crate::estimate::EstimateSet;

/// Emit the observable footprint of one prediction pass.
///
/// * `pi` — estimator family tag carried by the events (`single`/`multi`).
/// * `span` — profiling span name (`core.predict.single`/
///   `core.predict.multi`); its units count the estimates produced, a
///   deterministic proxy for model size (prediction consumes no meter
///   work units of its own).
/// * `at` — virtual time of the snapshot the estimates derive from.
pub fn observe_estimates(
    obs: &Obs,
    pi: &'static str,
    span: &'static str,
    at: f64,
    est: &EstimateSet,
) {
    if !obs.is_enabled() {
        return;
    }
    let mut sp = obs.span(span);
    sp.add_units(est.len() as f64);
    drop(sp);
    let mut pairs: Vec<(u64, f64)> = est.iter().collect();
    pairs.sort_by_key(|&(id, _)| id);
    for (id, seconds) in pairs {
        obs.emit(at, TraceKind::Estimate { pi, id, seconds });
    }
    obs.counter_add("core.estimates.emitted", est.len() as u64);
    if est.degraded() > 0 {
        obs.counter_add("core.sanitize.degraded", u64::from(est.degraded()));
    }
}

/// The one observed-emission path every estimator shares: take the set a
/// prediction pass produced, record its footprint, and hand the set back.
/// Observation is a pure read, so the returned set is exactly the input —
/// the `*_observed` wrappers on every [`crate::ensemble::Estimator`] are
/// one-line delegations to this helper instead of copy-pasted
/// emission blocks.
pub fn emit_observed(
    obs: &Obs,
    pi: &'static str,
    span: &'static str,
    at: f64,
    est: EstimateSet,
) -> EstimateSet {
    observe_estimates(obs, pi, span, at, &est);
    est
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_sorted_events_and_counters() {
        let obs = Obs::enabled();
        let est = EstimateSet::from_pairs([(7, 2.0), (1, 5.0), (3, f64::NAN)], false);
        observe_estimates(&obs, "multi", "core.predict.multi", 4.5, &est);
        let lines = obs.render_trace();
        assert_eq!(
            lines,
            "t=4.5 estimate pi=multi id=1 seconds=5\n\
             t=4.5 estimate pi=multi id=3 seconds=1000000000000\n\
             t=4.5 estimate pi=multi id=7 seconds=2\n"
        );
        assert_eq!(obs.counter("core.estimates.emitted"), 3);
        assert_eq!(obs.counter("core.sanitize.degraded"), 1);
        let st = obs.span_stat("core.predict.multi").unwrap();
        assert_eq!(st.calls, 1);
        assert_eq!(st.units, 3.0);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        let est = EstimateSet::from_pairs([(1, 5.0)], false);
        observe_estimates(&obs, "single", "core.predict.single", 0.0, &est);
        assert_eq!(obs.events_len(), 0);
        assert_eq!(obs.counter("core.estimates.emitted"), 0);
    }
}
