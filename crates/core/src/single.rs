//! The single-query progress indicator (baseline).
//!
//! Implements the SIGMOD'04 / ICDE'05 estimator the paper compares against:
//! `t = c / s`, where `c` is the refined remaining cost of the query itself
//! and `s` is its *currently observed* execution speed. Other queries are
//! seen only implicitly, through their effect on `s` — the PI has no idea
//! when they will finish or arrive, so it extrapolates the current speed
//! into the future.

use mqpi_sim::system::SystemSnapshot;

use crate::estimate::EstimateSet;

/// Single-query PI.
#[derive(Debug, Clone, Default)]
pub struct SingleQueryPi;

impl SingleQueryPi {
    /// Create the estimator.
    pub fn new() -> Self {
        SingleQueryPi
    }

    /// Estimate the remaining time of query `id`, or `None` if it is not
    /// running (queued and blocked queries have no meaningful single-query
    /// estimate).
    pub fn estimate(&self, snap: &SystemSnapshot, id: u64) -> Option<f64> {
        let q = snap.running.iter().find(|r| r.id == id)?;
        if q.blocked {
            return None;
        }
        // Observed speed; before the monitor has a sample, fall back to the
        // fair-share speed the query is entitled to right now (this is also
        // what a fresh PostgreSQL PI would assume).
        let total_w: f64 = snap
            .running
            .iter()
            .filter(|r| !r.blocked)
            .map(|r| r.weight)
            .sum();
        let fallback = if total_w > 0.0 {
            snap.rate * q.weight / total_w
        } else {
            snap.rate
        };
        let s = q.observed_speed.unwrap_or(fallback).max(1e-9);
        Some(q.remaining / s)
    }

    /// Estimates for all running, unblocked queries.
    pub fn estimates(&self, snap: &SystemSnapshot) -> EstimateSet {
        EstimateSet::from_pairs(
            snap.running
                .iter()
                .filter(|q| !q.blocked)
                .filter_map(|q| self.estimate(snap, q.id).map(|t| (q.id, t))),
            false,
        )
    }

    /// Like [`Self::estimates`], additionally recording the pass through
    /// `obs`: one `estimate` trace event per query (stamped with the
    /// snapshot time, sorted by id), the `core.predict.single` profiling
    /// span, and estimate/sanitizer counters. With a disabled handle this
    /// is exactly [`Self::estimates`].
    pub fn estimates_observed(&self, snap: &SystemSnapshot, obs: &mqpi_obs::Obs) -> EstimateSet {
        crate::observe::emit_observed(
            obs,
            "single",
            "core.predict.single",
            snap.time,
            self.estimates(snap),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqpi_sim::system::{QueryState, SystemSnapshot};

    fn state(id: u64, remaining: f64, speed: Option<f64>, weight: f64) -> QueryState {
        QueryState {
            id,
            name: format!("q{id}").into(),
            weight,
            arrived: 0.0,
            started: 0.0,
            done: 0.0,
            remaining,
            initial_estimate: remaining,
            observed_speed: speed,
            blocked: false,
            rolling_back: false,
        }
    }

    fn snap(running: Vec<QueryState>) -> SystemSnapshot {
        SystemSnapshot {
            time: 0.0,
            rate: 100.0,
            running,
            queued: vec![],
        }
    }

    #[test]
    fn divides_cost_by_observed_speed() {
        let s = snap(vec![state(1, 500.0, Some(25.0), 1.0)]);
        let pi = SingleQueryPi::new();
        assert!((pi.estimate(&s, 1).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn extrapolates_current_speed_ignoring_other_queries() {
        // Two queries; the other one is about to finish, but the single-
        // query PI keeps assuming the shared-speed world.
        let s = snap(vec![
            state(1, 500.0, Some(50.0), 1.0),
            state(2, 1.0, Some(50.0), 1.0),
        ]);
        let pi = SingleQueryPi::new();
        // 500/50 = 10s — although really Q2 finishes almost immediately and
        // Q1 would speed up to 100 U/s (true answer ≈ 5s).
        assert!((pi.estimate(&s, 1).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn falls_back_to_fair_share_before_first_sample() {
        let s = snap(vec![state(1, 300.0, None, 1.0), state(2, 300.0, None, 2.0)]);
        let pi = SingleQueryPi::new();
        // Fair share of q1: 100·(1/3) ⇒ 300/33.3 = 9s.
        assert!((pi.estimate(&s, 1).unwrap() - 9.0).abs() < 1e-6);
    }

    #[test]
    fn unknown_or_blocked_queries_yield_none() {
        let mut st = state(1, 10.0, Some(1.0), 1.0);
        st.blocked = true;
        let s = snap(vec![st]);
        let pi = SingleQueryPi::new();
        assert!(pi.estimate(&s, 1).is_none());
        assert!(pi.estimate(&s, 99).is_none());
    }
}
