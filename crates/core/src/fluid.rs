//! The generalized-processor-sharing fluid model underlying the multi-query
//! PI (paper §2.2–2.4).
//!
//! Under Assumptions 1–3, `n` concurrent queries with remaining costs `c_i`
//! and weights `w_i` execute as a fluid: query `i` proceeds at speed
//! `C·w_i/W`. Sorting by the *virtual finish time* `d_i = c_i/w_i` splits
//! execution into `n` stages, and with `W_k = Σ_{j≥k} w_j`:
//!
//! ```text
//! t_k = (d_k − d_{k−1}) · W_k / C          r_i = Σ_{k≤i} t_k
//! ```
//!
//! [`standard_remaining_times`] implements this `O(n log n)` closed form.
//! [`predict`] generalizes it with an event-driven simulation that also
//! models a bounded admission queue (§2.3) and predicted future arrivals
//! every `1/λ` seconds (§2.4); with neither, it reduces exactly to the
//! closed form (property-tested).
//!
//! `predict` runs in *virtual time*: under GPS the virtual finish tag
//! `v_i = V_admit + c_i/w_i` of a query never changes after admission, so
//! completions pop off a min-heap in tag order and each event costs
//! `O(log n)` — `O((n + arrivals) log n)` total, versus the
//! `O(events × n)` dense sweep kept as [`predict_reference`].

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// One query as the fluid model sees it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FluidQuery {
    /// Caller-side identifier (echoed in the prediction).
    pub id: u64,
    /// Remaining cost in work units.
    pub cost: f64,
    /// Scheduling weight (> 0).
    pub weight: f64,
}

/// Predicted future arrivals (§2.4): one query of average cost and weight
/// every `period = 1/λ` seconds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FutureArrivals {
    /// Inter-arrival period `1/λ` in seconds.
    pub period: f64,
    /// Average cost of a future query, in work units.
    pub cost: f64,
    /// Average weight of a future query.
    pub weight: f64,
    /// Cap on injected virtual arrivals — guarantees termination when the
    /// predicted load exceeds capacity (unstable system).
    pub max_arrivals: usize,
}

impl FutureArrivals {
    /// Standard construction from the paper's parameters: arrival rate λ,
    /// average cost c̄, average weight w̄.
    pub fn from_rate(lambda: f64, avg_cost: f64, avg_weight: f64) -> Option<Self> {
        if lambda <= 0.0 {
            return None;
        }
        Some(FutureArrivals {
            period: 1.0 / lambda,
            cost: avg_cost,
            weight: avg_weight,
            max_arrivals: 2000,
        })
    }
}

/// Outcome of a fluid prediction.
#[derive(Debug, Clone)]
pub struct FluidPrediction {
    /// `(id, seconds from now)` for every tracked query in completion
    /// order (simultaneous finishes keep admission order).
    pub finish_times: Vec<(u64, f64)>,
    /// True when the virtual-arrival cap was hit (predicted-unstable
    /// system); estimates are then lower bounds.
    pub truncated: bool,
    /// id → position in `finish_times`, so per-id lookups in driver loops
    /// are O(1) instead of a scan.
    index: IdIndex,
}

/// Position index over `finish_times`. Query ids from the simulator are
/// sequential, so the common case is a dense offset table — one bounds
/// check and one `Vec` load per lookup, no hashing. Arbitrary (sparse)
/// id sets fall back to a sorted slice with binary search rather than
/// paying O(id range) memory.
#[derive(Debug, Clone)]
enum IdIndex {
    /// `pos[id - base]` is `position + 1`; `0` marks an absent id.
    Dense { base: u64, pos: Vec<u32> },
    /// `(id, position)` sorted by id.
    Sorted(Vec<(u64, u32)>),
}

impl IdIndex {
    fn build(finish_times: &[(u64, f64)]) -> Self {
        let n = finish_times.len();
        if n == 0 {
            return IdIndex::Dense {
                base: 0,
                pos: Vec::new(),
            };
        }
        let (mut min, mut max) = (u64::MAX, u64::MIN);
        for &(id, _) in finish_times {
            min = min.min(id);
            max = max.max(id);
        }
        // `max - min + 1` overflows when the ids span the whole u64 line
        // (e.g. a snapshot holding both id 0 and id u64::MAX); an overflowed
        // range used to alias distinct ids onto the same dense slot, so a
        // lookup for a query finished before the snapshot could return a
        // stale live entry. Checked arithmetic routes any such span to the
        // sorted fallback, which never aliases.
        let range = max.checked_sub(min).and_then(|r| r.checked_add(1));
        // Dense only when the table stays linear in n (ids are sequential
        // up to small gaps); 4x slack plus a constant floor for tiny sets.
        match range {
            Some(range) if range <= (n as u64).saturating_mul(4).max(64) => {
                let mut pos = vec![0u32; range as usize];
                for (p, (id, _)) in finish_times.iter().enumerate() {
                    pos[(id - min) as usize] = p as u32 + 1;
                }
                IdIndex::Dense { base: min, pos }
            }
            _ => {
                let mut pairs: Vec<(u64, u32)> = finish_times
                    .iter()
                    .enumerate()
                    .map(|(p, (id, _))| (*id, p as u32))
                    .collect();
                pairs.sort_unstable_by_key(|&(id, _)| id);
                IdIndex::Sorted(pairs)
            }
        }
    }

    fn get(&self, id: u64) -> Option<usize> {
        match self {
            IdIndex::Dense { base, pos } => {
                let off = id.checked_sub(*base)?;
                match pos.get(off as usize) {
                    Some(&p) if p != 0 => Some(p as usize - 1),
                    _ => None,
                }
            }
            IdIndex::Sorted(pairs) => pairs
                .binary_search_by_key(&id, |&(id, _)| id)
                .ok()
                .map(|i| pairs[i].1 as usize),
        }
    }
}

impl FluidPrediction {
    pub fn new(finish_times: Vec<(u64, f64)>, truncated: bool) -> Self {
        let index = IdIndex::build(&finish_times);
        Self {
            finish_times,
            truncated,
            index,
        }
    }

    /// Finish time for one id.
    pub fn remaining_for(&self, id: u64) -> Option<f64> {
        self.index.get(id).map(|pos| self.finish_times[pos].1)
    }
}

static PREDICT_INVOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of [`predict`] calls. Drivers are expected to batch:
/// one `predict` per snapshot/tick, not one per query — tests assert on
/// deltas of this counter.
pub fn predict_invocations() -> u64 {
    PREDICT_INVOCATIONS.load(AtomicOrdering::Relaxed)
}

/// Closed-form standard case (§2.2): remaining execution time of each query,
/// aligned with the input order. `O(n log n)` time, `O(n)` space.
///
/// ```
/// use mqpi_core::fluid::{standard_remaining_times, FluidQuery};
///
/// // The paper's Fig. 1: four equal-priority queries at C = 100 U/s.
/// let queries: Vec<FluidQuery> = (1..=4)
///     .map(|i| FluidQuery { id: i, cost: 100.0 * i as f64, weight: 1.0 })
///     .collect();
/// let remaining = standard_remaining_times(&queries, 100.0);
/// assert_eq!(remaining, vec![4.0, 7.0, 9.0, 10.0]);
/// ```
///
/// # Panics
/// Panics if any weight is ≤ 0 or `rate` is ≤ 0.
pub fn standard_remaining_times(queries: &[FluidQuery], rate: f64) -> Vec<f64> {
    assert!(rate > 0.0, "rate must be positive");
    let n = queries.len();
    if n == 0 {
        return Vec::new();
    }
    for q in queries {
        assert!(q.weight > 0.0, "weights must be positive");
        assert!(q.cost >= 0.0, "costs must be non-negative");
    }
    // Sort indices by virtual finish time d = c/w.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (queries[a].cost / queries[a].weight).total_cmp(&(queries[b].cost / queries[b].weight))
    });
    // Suffix weight sums over the sorted order.
    let mut suffix_w = vec![0.0; n + 1];
    for k in (0..n).rev() {
        suffix_w[k] = suffix_w[k + 1] + queries[order[k]].weight;
    }
    let mut out = vec![0.0; n];
    let mut t = 0.0;
    let mut d_prev = 0.0;
    for k in 0..n {
        let q = &queries[order[k]];
        let d = q.cost / q.weight;
        t += (d - d_prev) * suffix_w[k] / rate;
        d_prev = d;
        out[order[k]] = t;
    }
    out
}

#[derive(Debug, Clone)]
struct Live {
    /// `None` for virtual (predicted future) queries.
    id: Option<u64>,
    cost: f64,
    weight: f64,
}

/// One admitted query in the virtual-time heap. Ordered as a *min*-heap on
/// the virtual finish tag, with admission sequence as a deterministic
/// tie-break (`BinaryHeap` is a max-heap, hence the reversed comparisons).
#[derive(Debug, Clone, Copy)]
struct Admitted {
    virtual_finish: f64,
    seq: u64,
    id: Option<u64>,
    weight: f64,
}

impl PartialEq for Admitted {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Admitted {}

impl PartialOrd for Admitted {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Admitted {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .virtual_finish
            .total_cmp(&self.virtual_finish)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Mutable GPS state shared by admission and the event loop.
struct VirtualClock {
    /// Virtual time `V`: the integral of `rate/W` over real time.
    vt: f64,
    /// Sum of weights of admitted, unfinished queries.
    total_w: f64,
    /// Next admission sequence number.
    seq: u64,
}

impl VirtualClock {
    fn admit(&mut self, q: Live, heap: &mut BinaryHeap<Admitted>) {
        heap.push(Admitted {
            virtual_finish: self.vt + q.cost / q.weight,
            seq: self.seq,
            id: q.id,
            weight: q.weight,
        });
        self.seq += 1;
        self.total_w += q.weight;
    }

    /// Admit from the FIFO queue while slots are free.
    fn drain(
        &mut self,
        queue: &mut VecDeque<Live>,
        heap: &mut BinaryHeap<Admitted>,
        slots: Option<usize>,
    ) {
        while slots.is_none_or(|k| heap.len() < k) {
            let Some(q) = queue.pop_front() else {
                break;
            };
            self.admit(q, heap);
        }
    }
}

/// Event-driven fluid prediction with admission limits and future arrivals.
///
/// * `running` — queries currently executing.
/// * `queued` — admission queue in FIFO order; they start as slots free.
/// * `slots` — admission limit (`None` = unlimited). Must be ≥ 1 and, if
///   finite, at least `running.len()` is assumed occupied.
/// * `future` — predicted arrival stream, first arrival after one period.
/// * `rate` — aggregate processing rate `C`.
///
/// Returns the predicted finish time (seconds from now) of every *tracked*
/// query (those in `running`/`queued`; virtual arrivals only influence the
/// load).
///
/// Virtual-time formulation: while the admitted set is fixed, real time to
/// the next completion is `(v_min − V)·W/rate`, and a query arriving after
/// `Δt` advances `V` by `Δt·rate/W`. Each completion/arrival is one heap
/// operation, so the whole prediction is `O((n + arrivals) log n)` —
/// property-tested to agree with the dense [`predict_reference`] sweep.
pub fn predict(
    running: &[FluidQuery],
    queued: &[FluidQuery],
    slots: Option<usize>,
    future: Option<&FutureArrivals>,
    rate: f64,
) -> FluidPrediction {
    PREDICT_INVOCATIONS.fetch_add(1, AtomicOrdering::Relaxed);
    assert!(rate > 0.0, "rate must be positive");
    if let Some(k) = slots {
        assert!(k >= 1, "admission limit must be at least 1");
    }
    const EPS: f64 = 1e-9;

    let mut heap: BinaryHeap<Admitted> =
        BinaryHeap::with_capacity(running.len() + queued.len() + 1);
    let mut queue: VecDeque<Live> = queued
        .iter()
        .map(|q| Live {
            id: Some(q.id),
            cost: q.cost.max(0.0),
            weight: q.weight,
        })
        .collect();
    let mut clock = VirtualClock {
        vt: 0.0,
        total_w: 0.0,
        seq: 0,
    };
    // Everything already running occupies a slot regardless of `slots`.
    for q in running {
        clock.admit(
            Live {
                id: Some(q.id),
                cost: q.cost.max(0.0),
                weight: q.weight,
            },
            &mut heap,
        );
    }
    clock.drain(&mut queue, &mut heap, slots);

    let mut finish: Vec<(u64, f64)> = Vec::with_capacity(running.len() + queued.len());
    let mut tracked_left = running.len() + queued.len();
    let mut t = 0.0;
    let mut truncated = false;
    let mut arrivals_made = 0usize;
    let mut next_arrival = future.map(|f| f.period);

    while tracked_left > 0 {
        let Some(top) = heap.peek() else {
            // Unreachable: admission always fills at least one slot while
            // tracked queries remain; defensive exit mirrors the reference.
            break;
        };
        let dt_finish = ((top.virtual_finish - clock.vt) * clock.total_w / rate).max(0.0);
        let dt_arrival = match (future, next_arrival) {
            (Some(f), Some(at)) if arrivals_made < f.max_arrivals => Some(at - t),
            _ => None,
        };
        match dt_arrival {
            Some(da) if da < dt_finish - EPS => {
                // Arrival strictly first: advance the fluid to that instant.
                clock.vt += da * rate / clock.total_w;
                t += da;
            }
            _ => {
                // Completion event: jump straight to the top tag.
                t += dt_finish;
                clock.vt = clock.vt.max(top.virtual_finish);
                while let Some(top) = heap.peek() {
                    // Residual work (v − V)·w ≤ EPS counts as finished, like
                    // the reference's cost ≤ EPS sweep.
                    if (top.virtual_finish - clock.vt) * top.weight > EPS {
                        break;
                    }
                    // invariant: peek above returned Some.
                    let Some(done) = heap.pop() else { break };
                    clock.total_w -= done.weight;
                    if let Some(id) = done.id {
                        finish.push((id, t));
                        tracked_left -= 1;
                    }
                }
                if heap.is_empty() {
                    clock.total_w = 0.0; // clear accumulated FP drift
                }
                clock.drain(&mut queue, &mut heap, slots);
            }
        }
        // Arrival due at (or within EPS of) the current instant.
        if let (Some(f), Some(at)) = (future, next_arrival) {
            if arrivals_made < f.max_arrivals && at - t <= EPS {
                queue.push_back(Live {
                    id: None,
                    cost: f.cost,
                    weight: f.weight,
                });
                arrivals_made += 1;
                next_arrival = Some(at + f.period);
                if arrivals_made == f.max_arrivals {
                    truncated = true;
                }
                clock.drain(&mut queue, &mut heap, slots);
            }
        }
    }
    FluidPrediction::new(finish, truncated)
}

/// The dense `O(events × n)` fluid sweep that [`predict`] replaced: every
/// event recomputes the weight sum and decrements every running cost.
/// Kept as the oracle for equivalence property tests and as the baseline
/// for the before/after benchmarks; not called on any production path.
pub fn predict_reference(
    running: &[FluidQuery],
    queued: &[FluidQuery],
    slots: Option<usize>,
    future: Option<&FutureArrivals>,
    rate: f64,
) -> FluidPrediction {
    assert!(rate > 0.0, "rate must be positive");
    if let Some(k) = slots {
        assert!(k >= 1, "admission limit must be at least 1");
    }
    let mut run: Vec<Live> = running
        .iter()
        .map(|q| Live {
            id: Some(q.id),
            cost: q.cost.max(0.0),
            weight: q.weight,
        })
        .collect();
    let mut queue: VecDeque<Live> = queued
        .iter()
        .map(|q| Live {
            id: Some(q.id),
            cost: q.cost.max(0.0),
            weight: q.weight,
        })
        .collect();
    let mut finish: Vec<(u64, f64)> = Vec::with_capacity(run.len() + queue.len());
    let mut t = 0.0;
    let mut truncated = false;
    let mut arrivals_made = 0usize;
    let mut next_arrival = future.map(|f| f.period);

    let tracked_left = |run: &[Live], queue: &VecDeque<Live>| {
        run.iter().any(|q| q.id.is_some()) || queue.iter().any(|q| q.id.is_some())
    };

    const EPS: f64 = 1e-9;
    // Admit initially if there is spare capacity.
    admit(&mut run, &mut queue, slots);
    while tracked_left(&run, &queue) {
        if run.is_empty() {
            // Only possible when queue is empty too (admit always fills
            // slots ≥ 1) — but tracked_left said otherwise; defensive break.
            break;
        }
        let total_w: f64 = run.iter().map(|q| q.weight).sum();
        // Time to next completion.
        let dt_finish = run
            .iter()
            .map(|q| q.cost * total_w / (rate * q.weight))
            .fold(f64::INFINITY, f64::min)
            .max(0.0);
        // Time to next virtual arrival.
        let dt_arrival = match (future, next_arrival) {
            (Some(f), Some(at)) if arrivals_made < f.max_arrivals => Some(at - t),
            _ => None,
        };
        let dt = match dt_arrival {
            Some(da) if da < dt_finish - EPS => da,
            _ => dt_finish,
        };
        // Advance all running queries.
        for q in &mut run {
            q.cost -= rate * q.weight / total_w * dt;
        }
        t += dt;
        // Completions.
        let mut i = 0;
        while i < run.len() {
            if run[i].cost <= EPS {
                let q = run.remove(i);
                if let Some(id) = q.id {
                    finish.push((id, t));
                }
            } else {
                i += 1;
            }
        }
        admit(&mut run, &mut queue, slots);
        // Arrival event.
        if let (Some(f), Some(at)) = (future, next_arrival) {
            if arrivals_made < f.max_arrivals && at - t <= EPS {
                queue.push_back(Live {
                    id: None,
                    cost: f.cost,
                    weight: f.weight,
                });
                arrivals_made += 1;
                next_arrival = Some(at + f.period);
                if arrivals_made == f.max_arrivals {
                    truncated = true;
                }
                admit(&mut run, &mut queue, slots);
            }
        }
    }
    FluidPrediction::new(finish, truncated)
}

fn admit(run: &mut Vec<Live>, queue: &mut VecDeque<Live>, slots: Option<usize>) {
    loop {
        if slots.is_some_and(|k| run.len() >= k) {
            break;
        }
        let Some(q) = queue.pop_front() else {
            break;
        };
        run.push(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64, cost: f64, weight: f64) -> FluidQuery {
        FluidQuery { id, cost, weight }
    }

    #[test]
    fn paper_fig1_equal_priorities() {
        // Four equal-priority queries, costs 100, 200, 300, 400 at C=100:
        // stage durations: 100*4/100=4, 100*3/100=3, 100*2/100=2, 100/100=1.
        let qs = [
            q(1, 100.0, 1.0),
            q(2, 200.0, 1.0),
            q(3, 300.0, 1.0),
            q(4, 400.0, 1.0),
        ];
        let r = standard_remaining_times(&qs, 100.0);
        assert_eq!(r, vec![4.0, 7.0, 9.0, 10.0]);
    }

    #[test]
    fn single_query_runs_at_full_speed() {
        let r = standard_remaining_times(&[q(1, 500.0, 2.0)], 50.0);
        assert_eq!(r, vec![10.0]);
    }

    #[test]
    fn weights_shift_finish_order() {
        // Same cost; higher weight finishes first.
        let qs = [q(1, 300.0, 1.0), q(2, 300.0, 3.0)];
        let r = standard_remaining_times(&qs, 100.0);
        assert!(r[1] < r[0]);
        // Total work conservation: last finisher at total cost / rate.
        assert!((r[0] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn total_completion_time_is_total_work_over_rate() {
        let qs = [q(1, 123.0, 1.0), q(2, 456.0, 2.0), q(3, 789.0, 0.5)];
        let r = standard_remaining_times(&qs, 10.0);
        let last = r.iter().cloned().fold(0.0, f64::max);
        assert!((last - (123.0 + 456.0 + 789.0) / 10.0).abs() < 1e-9);
    }

    #[test]
    fn predict_matches_closed_form_without_queue_or_future() {
        let qs = [q(1, 100.0, 1.0), q(2, 250.0, 2.0), q(3, 80.0, 0.5)];
        let closed = standard_remaining_times(&qs, 60.0);
        let p = predict(&qs, &[], None, None, 60.0);
        for (i, qq) in qs.iter().enumerate() {
            let t = p.remaining_for(qq.id).unwrap();
            assert!(
                (t - closed[i]).abs() < 1e-6,
                "id {}: {} vs {}",
                qq.id,
                t,
                closed[i]
            );
        }
        assert!(!p.truncated);
    }

    #[test]
    fn predict_with_admission_queue() {
        // Two slots; Q1 (big) and Q2 (small) run, Q3 waits (paper's NAQ
        // shape): N1=50, N2=10, N3=20 scaled to costs.
        let running = [q(1, 500.0, 1.0), q(2, 100.0, 1.0)];
        let queued = [q(3, 200.0, 1.0)];
        let p = predict(&running, &queued, Some(2), None, 100.0);
        // Q2 finishes at 2*100/100 = 2s; then Q3 starts.
        let f2 = p.remaining_for(2).unwrap();
        assert!((f2 - 2.0).abs() < 1e-6);
        // After 2s, Q1 has 400 left; Q1&Q3 share. Q3: 200 left, finishes at
        // 2 + 2*200/100 = 6; then Q1 alone: 400-200=200 left ⇒ 6+2=8.
        assert!((p.remaining_for(3).unwrap() - 6.0).abs() < 1e-6);
        assert!((p.remaining_for(1).unwrap() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn predict_with_future_arrivals_slows_everyone() {
        let running = [q(1, 1000.0, 1.0)];
        let without = predict(&running, &[], None, None, 100.0);
        let f = FutureArrivals::from_rate(0.5, 200.0, 1.0).unwrap();
        let with = predict(&running, &[], None, Some(&f), 100.0);
        assert!(with.remaining_for(1).unwrap() > without.remaining_for(1).unwrap());
    }

    #[test]
    fn future_arrival_math_is_exact() {
        // C=100, one query of 300 units. Arrival at t=2 of cost 100.
        // Before t=2: 200 done at full speed, 100 left. After: half speed.
        // Both finish together? q1: 100 left, virtual: 100, equal weights ⇒
        // both at t = 2 + 200/100 = 4.
        let f = FutureArrivals {
            period: 2.0,
            cost: 100.0,
            weight: 1.0,
            max_arrivals: 1,
        };
        let p = predict(&[q(1, 300.0, 1.0)], &[], None, Some(&f), 100.0);
        assert!((p.remaining_for(1).unwrap() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn unstable_future_load_truncates_but_terminates() {
        // Arrival work rate 2× capacity.
        let f = FutureArrivals {
            period: 1.0,
            cost: 200.0,
            weight: 1.0,
            max_arrivals: 50,
        };
        let p = predict(&[q(1, 5000.0, 1.0)], &[], None, Some(&f), 100.0);
        assert!(p.truncated);
        assert!(p.remaining_for(1).unwrap() > 50.0);
    }

    #[test]
    fn zero_cost_queries_finish_immediately() {
        let p = predict(&[q(1, 0.0, 1.0), q(2, 100.0, 1.0)], &[], None, None, 100.0);
        assert_eq!(p.remaining_for(1).unwrap(), 0.0);
        assert!((p.remaining_for(2).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn remaining_for_handles_sparse_and_dense_ids() {
        // Sequential ids take the dense offset table...
        let dense = FluidPrediction::new((0..100).map(|i| (i + 7, i as f64)).collect(), false);
        for i in 0..100u64 {
            assert_eq!(dense.remaining_for(i + 7), Some(i as f64));
        }
        assert_eq!(dense.remaining_for(6), None);
        assert_eq!(dense.remaining_for(107), None);
        // ...while scattered ids fall back to the sorted index.
        let ids = [3u64, u64::MAX - 1, 1 << 40, 17, 9_999_999];
        let sparse = FluidPrediction::new(ids.iter().map(|&id| (id, id as f64)).collect(), false);
        for &id in &ids {
            assert_eq!(sparse.remaining_for(id), Some(id as f64));
        }
        assert_eq!(sparse.remaining_for(4), None);
        assert_eq!(sparse.remaining_for(0), None);
    }

    #[test]
    fn remaining_for_is_none_for_queries_finished_before_the_snapshot() {
        // Regression: a PI asking about a query that completed before this
        // snapshot was taken must get `None`, never a stale neighbour's
        // slot. Dense path with an interior gap (id 50 finished earlier):
        let times: Vec<(u64, f64)> = (0..100).filter(|&i| i != 50).map(|i| (i, 1.0)).collect();
        let dense = FluidPrediction::new(times, false);
        assert_eq!(dense.remaining_for(50), None);
        assert_eq!(dense.remaining_for(49), Some(1.0));
        // Sparse path: the old-generation id 12 is absent from the new set.
        let sparse =
            FluidPrediction::new(vec![(3, 1.0), (1 << 40, 2.0), (u64::MAX - 1, 3.0)], false);
        assert_eq!(sparse.remaining_for(12), None);
        assert_eq!(sparse.remaining_for(u64::MAX), None);
    }

    #[test]
    fn remaining_for_survives_full_u64_id_span() {
        // Regression: `max - min + 1` used to overflow for a snapshot
        // containing both id 0 and id u64::MAX (panic in debug; in release
        // an aliased dense table could hand back a stale slot). The span
        // must route to the sorted fallback and answer exactly.
        let p = FluidPrediction::new(vec![(0, 1.5), (u64::MAX, 2.5)], false);
        assert_eq!(p.remaining_for(0), Some(1.5));
        assert_eq!(p.remaining_for(u64::MAX), Some(2.5));
        assert_eq!(p.remaining_for(1), None);
        assert_eq!(p.remaining_for(u64::MAX - 1), None);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(standard_remaining_times(&[], 10.0).is_empty());
        let p = predict(&[], &[], None, None, 10.0);
        assert!(p.finish_times.is_empty());
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_panics() {
        standard_remaining_times(&[q(1, 10.0, 0.0)], 1.0);
    }

    #[test]
    fn virtual_time_agrees_with_reference_sweep() {
        let running = [q(1, 500.0, 1.0), q(2, 100.0, 2.0), q(3, 321.0, 0.5)];
        let queued = [q(4, 200.0, 1.0), q(5, 50.0, 4.0)];
        let f = FutureArrivals {
            period: 1.5,
            cost: 120.0,
            weight: 1.0,
            max_arrivals: 64,
        };
        let fast = predict(&running, &queued, Some(2), Some(&f), 100.0);
        let slow = predict_reference(&running, &queued, Some(2), Some(&f), 100.0);
        assert_eq!(fast.truncated, slow.truncated);
        assert_eq!(fast.finish_times.len(), slow.finish_times.len());
        for (id, t) in &slow.finish_times {
            let got = fast.remaining_for(*id).unwrap();
            assert!((got - t).abs() < 1e-6, "id {id}: {got} vs {t}");
        }
    }

    #[test]
    fn predict_counts_invocations() {
        let before = predict_invocations();
        predict(&[q(1, 10.0, 1.0)], &[], None, None, 10.0);
        predict(&[q(1, 10.0, 1.0)], &[], None, None, 10.0);
        assert!(predict_invocations() >= before + 2);
    }
}
