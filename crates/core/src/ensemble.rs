//! Estimator ensemble: online selection plus uncertainty bands.
//!
//! König et al. (*A Statistical Approach Towards Robust Progress
//! Estimation*) observe that no single progress estimator dominates across
//! workloads, and that scoring several against realized finish times and
//! switching online fixes the worst case. Wu et al. (*Uncertainty Aware
//! Query Execution Time Prediction*) argue estimates should carry
//! distributions, not points. This module adds both on top of the paper's
//! PIs:
//!
//! * [`Estimator`] — the common trait. The existing [`SingleQueryPi`] and
//!   [`MultiQueryPi`] implement it, alongside three new families:
//!   [`DriverNodePi`] (DNE-style: fair share of the *nominal* rate over
//!   the current driver set), [`TotalWorkPi`] (TGN/GNM-style: total work
//!   over life-average speed), and [`SpeedEwmaPi`] (an exponentially
//!   smoothed observed-speed extrapolator reusing
//!   [`mqpi_sim::speed::SpeedMonitor`]).
//! * [`Ensemble`] — runs every estimator per tick, scores each against
//!   realized finish times with a windowed decayed relative error,
//!   switches the active estimator per query with hysteresis, and attaches
//!   p10/p50/p90 [`Band`]s derived from the chosen estimator's empirical
//!   residual quantiles widened by the current rate uncertainty.
//!
//! Every piece is deterministic: scores, switches, and bands are pure
//! functions of the tick/resolve call sequence, so ensemble output is
//! bit-identical across worker counts and checkpoint/restore cuts
//! ([`Ensemble::checkpoint`] / [`Ensemble::restore_state`]).

use std::collections::BTreeMap;

use mqpi_ckpt::{CkptError, Dec, Enc};
use mqpi_obs::{Obs, TraceKind, ERROR_BUCKETS};
use mqpi_sim::speed::SpeedMonitor;
use mqpi_sim::system::{QueryState, SystemSnapshot};

use crate::estimate::{relative_error, Band, BandedEstimate, EstimateSet};
use crate::multi::{MultiQueryPi, Visibility};
use crate::single::SingleQueryPi;

/// A remaining-time estimator over system snapshots.
///
/// Implementations may be stateful (the speed-EWMA family keeps per-query
/// monitors), hence `&mut self`; stateless estimators simply ignore it.
/// The provided `estimates_observed` is the one shared observed-emission
/// path ([`crate::observe::emit_observed`]), so no implementation
/// copy-pastes its own trace/counter block.
pub trait Estimator {
    /// Stable estimator family tag (`single`, `multi`, `dne`, `tgn`,
    /// `ewma`, …) — carried by trace events and used in reports.
    fn name(&self) -> &'static str;

    /// Profiling span covering one prediction pass
    /// (`core.predict.<name>`).
    fn span(&self) -> &'static str;

    /// Remaining-time estimates for every query this estimator can see in
    /// the snapshot. Every value is sanitized by [`EstimateSet`]: finite
    /// and non-negative, whatever the estimator math produced.
    fn estimates(&mut self, snap: &SystemSnapshot) -> EstimateSet;

    /// Like [`Estimator::estimates`], additionally recording the pass
    /// through `obs`: one `estimate` trace event per query (sorted by id),
    /// the estimator's profiling span, and emission/sanitizer counters.
    /// With a disabled handle this is exactly `estimates`.
    fn estimates_observed(&mut self, snap: &SystemSnapshot, obs: &Obs) -> EstimateSet {
        let est = self.estimates(snap);
        crate::observe::emit_observed(obs, self.name(), self.span(), snap.time, est)
    }

    /// Append any mutable estimator state to a checkpoint. Stateless
    /// estimators write nothing; whatever is written here must be read
    /// back symmetrically by [`Estimator::decode_state`].
    fn encode_state(&self, e: &mut Enc) {
        let _ = e;
    }

    /// Restore state written by [`Estimator::encode_state`].
    fn decode_state(&mut self, d: &mut Dec<'_>) -> Result<(), CkptError> {
        let _ = d;
        Ok(())
    }
}

/// Fair-share speed of one unblocked query under the snapshot's *nominal*
/// aggregate rate: `C · w / Σw` over unblocked running queries (the whole
/// rate when no weight is positive).
fn fair_share_speed(snap: &SystemSnapshot, q: &QueryState) -> f64 {
    let total_w: f64 = snap
        .running
        .iter()
        .filter(|r| !r.blocked)
        .map(|r| r.weight)
        .sum();
    if total_w > 0.0 {
        snap.rate * q.weight / total_w
    } else {
        snap.rate
    }
}

impl Estimator for SingleQueryPi {
    fn name(&self) -> &'static str {
        "single"
    }

    fn span(&self) -> &'static str {
        "core.predict.single"
    }

    fn estimates(&mut self, snap: &SystemSnapshot) -> EstimateSet {
        SingleQueryPi::estimates(self, snap)
    }
}

impl Estimator for MultiQueryPi {
    fn name(&self) -> &'static str {
        "multi"
    }

    fn span(&self) -> &'static str {
        "core.predict.multi"
    }

    fn estimates(&mut self, snap: &SystemSnapshot) -> EstimateSet {
        MultiQueryPi::estimates(self, snap)
    }
}

/// DNE-style "driver node" estimator (König et al.): remaining time is the
/// query's remaining cost over its fair share of the *nominal* rate across
/// the current driver set — the unblocked queries running right now. It
/// deliberately ignores observed speeds (no monitor lag to poison) and all
/// future dynamics (no queue, no arrivals, no finish events), which makes
/// it maximally robust to corrupted monitors and maximally naive about
/// load changes.
#[derive(Debug, Clone, Default)]
pub struct DriverNodePi;

impl DriverNodePi {
    /// Create the estimator.
    pub fn new() -> Self {
        DriverNodePi
    }
}

impl Estimator for DriverNodePi {
    fn name(&self) -> &'static str {
        "dne"
    }

    fn span(&self) -> &'static str {
        "core.predict.dne"
    }

    fn estimates(&mut self, snap: &SystemSnapshot) -> EstimateSet {
        EstimateSet::from_pairs(
            snap.running.iter().filter(|q| !q.blocked).map(|q| {
                let s = fair_share_speed(snap, q).max(1e-9);
                (q.id, q.remaining / s)
            }),
            false,
        )
    }
}

/// TGN/GNm-style total-work estimator (König et al.): extrapolate each
/// query's *life-average* speed — total work done over total wall-clock
/// life — instead of an instantaneous or smoothed one. Queries that have
/// not yet done any work fall back to the fair-share speed. Long-lived
/// queries get a very stable (and very sluggish) speed signal: the exact
/// opposite trade to [`SpeedEwmaPi`].
#[derive(Debug, Clone, Default)]
pub struct TotalWorkPi;

impl TotalWorkPi {
    /// Create the estimator.
    pub fn new() -> Self {
        TotalWorkPi
    }
}

impl Estimator for TotalWorkPi {
    fn name(&self) -> &'static str {
        "tgn"
    }

    fn span(&self) -> &'static str {
        "core.predict.tgn"
    }

    fn estimates(&mut self, snap: &SystemSnapshot) -> EstimateSet {
        EstimateSet::from_pairs(
            snap.running.iter().filter(|q| !q.blocked).map(|q| {
                let elapsed = snap.time - q.started;
                let s = if q.done > 0.0 && elapsed > 0.0 {
                    q.done / elapsed
                } else {
                    fair_share_speed(snap, q)
                };
                (q.id, q.remaining / s.max(1e-9))
            }),
            false,
        )
    }
}

/// Observed-speed extrapolator with its own smoothing horizon: one
/// [`SpeedMonitor`] per query, fed cumulative done-work from snapshots,
/// `t = c / s_ewma`. Unlike [`SingleQueryPi`] — which reads the
/// *scheduler's* monitor (time constant fixed by the system config) — this
/// estimator owns its monitors, so the ensemble can run a faster or slower
/// smoothing horizon than the scheduler and score the difference.
#[derive(Debug, Clone)]
pub struct SpeedEwmaPi {
    tau: f64,
    monitors: BTreeMap<u64, SpeedMonitor>,
}

impl SpeedEwmaPi {
    /// Create the estimator with smoothing time constant `tau` seconds
    /// (clamped to a small positive floor; [`SpeedMonitor`] rejects
    /// non-positive constants).
    pub fn new(tau: f64) -> Self {
        let tau = if tau.is_finite() { tau.max(1e-3) } else { 1e-3 };
        SpeedEwmaPi {
            tau,
            monitors: BTreeMap::new(),
        }
    }
}

impl Estimator for SpeedEwmaPi {
    fn name(&self) -> &'static str {
        "ewma"
    }

    fn span(&self) -> &'static str {
        "core.predict.ewma"
    }

    fn estimates(&mut self, snap: &SystemSnapshot) -> EstimateSet {
        // Drop monitors for queries that left (or blocked — a blocked
        // query's speed is not "slow", it is undefined; it re-warms on
        // resume).
        let live: Vec<u64> = snap
            .running
            .iter()
            .filter(|q| !q.blocked)
            .map(|q| q.id)
            .collect();
        self.monitors.retain(|id, _| live.contains(id));
        let mut pairs = Vec::with_capacity(live.len());
        for q in snap.running.iter().filter(|q| !q.blocked) {
            let m = self.monitors.entry(q.id).or_insert_with(|| {
                SpeedMonitor::new_at(self.tau, q.started)
                    .unwrap_or_else(|_| SpeedMonitor::new_at(1e-3, q.started).expect("valid tau"))
            });
            m.update(snap.time, q.done);
            let s = m.speed().unwrap_or_else(|| fair_share_speed(snap, q));
            pairs.push((q.id, q.remaining / s.max(1e-9)));
        }
        EstimateSet::from_pairs(pairs, false)
    }

    fn encode_state(&self, e: &mut Enc) {
        e.put_f64(self.tau);
        e.put_usize(self.monitors.len());
        for (&id, m) in &self.monitors {
            let (tau, last_t, last_units, ema) = m.to_parts();
            e.put_u64(id);
            e.put_f64(tau);
            e.put_f64(last_t);
            e.put_f64(last_units);
            e.put_opt_f64(ema);
        }
    }

    fn decode_state(&mut self, d: &mut Dec<'_>) -> Result<(), CkptError> {
        self.tau = d.get_f64()?;
        let n = d.get_usize()?;
        self.monitors.clear();
        for _ in 0..n {
            let id = d.get_u64()?;
            let (tau, last_t, last_units, ema) =
                (d.get_f64()?, d.get_f64()?, d.get_f64()?, d.get_opt_f64()?);
            let m = SpeedMonitor::from_parts(tau, last_t, last_units, ema)
                .map_err(|e| CkptError::Corrupt(format!("speed monitor: {e}")))?;
            self.monitors.insert(id, m);
        }
        Ok(())
    }
}

/// Tuning knobs of the [`Ensemble`] selector and its bands. The defaults
/// are what the bench harness and the PI scenarios run with.
#[derive(Debug, Clone, Copy)]
pub struct EnsembleConfig {
    /// Residual-window capacity per estimator (recent `actual / estimate`
    /// ratios; band quantiles are computed over this window).
    pub window: usize,
    /// Per-resolved-sample decay of the error score: older errors fade
    /// geometrically, so the score is a windowed decayed mean.
    pub decay: f64,
    /// Hysteresis: a challenger estimator must beat the incumbent's score
    /// by this relative margin before a query switches to it.
    pub switch_margin: f64,
    /// Hysteresis, absolute arm: the challenger must also beat the
    /// incumbent by this many points of relative error. When every member
    /// is near-exact (a calm steady-state workload), relative margins
    /// compare noise against noise — 0.004 "beats" 0.005 by 20 % — and
    /// without this floor the selector would wander off its prior onto a
    /// member whose model happens to fit only the current regime.
    pub min_gain: f64,
    /// Decayed evidence weight a member must accumulate before its score
    /// ranks at all (one resolved query contributes 1.0, decayed per
    /// resolution). Below it the score reads as `inf` and the lineup's
    /// prior keeps the choice.
    pub min_weight: f64,
    /// Resolved residuals required before empirical quantiles replace the
    /// prior band spread.
    pub min_residuals: usize,
    /// Prior band-ratio spread used before enough residuals exist:
    /// `p10 = prior_lo · p50`, `p90 = prior_hi · p50`.
    pub prior_lo: f64,
    /// See [`EnsembleConfig::prior_lo`].
    pub prior_hi: f64,
    /// Baseline relative half-spread always added to the rate-uncertainty
    /// band component.
    pub base_spread: f64,
    /// Realized remaining times below this are skipped when scoring (the
    /// paper's campaigns do the same: near-zero actuals make relative
    /// error explode without saying anything about the estimator).
    pub min_actual: f64,
    /// Per-sample relative-error cap (winsorization), matching the chaos
    /// campaign's `ERR_CAP`.
    pub err_cap: f64,
    /// Upper bound on buffered unresolved samples; the oldest are dropped
    /// beyond it so a never-finishing workload cannot grow memory
    /// without bound.
    pub max_pending: usize,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            window: 64,
            decay: 0.9,
            switch_margin: 0.2,
            min_gain: 0.05,
            min_weight: 2.5,
            min_residuals: 8,
            prior_lo: 0.5,
            prior_hi: 2.0,
            base_spread: 0.05,
            min_actual: 1.0,
            err_cap: 100.0,
            max_pending: 65_536,
        }
    }
}

/// Bounded FIFO of recent residual ratios.
#[derive(Debug, Clone)]
struct Ring {
    cap: usize,
    buf: Vec<f64>,
    next: usize,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            cap: cap.max(1),
            buf: Vec::new(),
            next: 0,
        }
    }

    fn push(&mut self, v: f64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.cap;
        }
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    /// Nearest-rank quantile over the window (`q` in `[0, 1]`).
    fn quantile(&self, sorted: &[f64], q: f64) -> f64 {
        debug_assert!(!sorted.is_empty());
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    fn sorted(&self) -> Vec<f64> {
        let mut v = self.buf.clone();
        v.sort_by(f64::total_cmp);
        v
    }
}

/// One estimator-selection decision, surfaced by [`EnsembleTick`] and (via
/// [`Ensemble::tick_observed`]) as a `selector` trace event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectorDecision {
    /// Query the decision is for.
    pub id: u64,
    /// Estimator the query was using (`-` on first assignment).
    pub from: &'static str,
    /// Estimator the query uses from now on.
    pub to: &'static str,
    /// Windowed decayed error of `to` at decision time (`inf` before any
    /// resolved sample).
    pub score: f64,
}

/// Output of one [`Ensemble::tick`]: banded estimates for every eligible
/// query, the raw per-estimator sets (in [`Ensemble::names`] order), and
/// the selector decisions made this tick.
#[derive(Debug, Clone)]
pub struct EnsembleTick {
    /// Banded estimates, sorted by query id.
    pub banded: Vec<BandedEstimate>,
    /// Each estimator's full [`EstimateSet`] for this snapshot.
    pub sets: Vec<EstimateSet>,
    /// Assignments (`from == "-"`) and switches made this tick.
    pub decisions: Vec<SelectorDecision>,
}

impl EnsembleTick {
    /// The ensemble's point estimates (band p50s) as a plain
    /// [`EstimateSet`].
    pub fn point_set(&self) -> EstimateSet {
        EstimateSet::from_pairs(self.banded.iter().map(|b| (b.id, b.band.p50)), false)
    }
}

/// Buffered unresolved sample: the time it was taken, the query, and every
/// estimator's point estimate (`NaN` where an estimator had none).
#[derive(Debug, Clone)]
struct Pending {
    at: f64,
    id: u64,
    ests: Vec<f64>,
}

/// The estimator ensemble: per-tick prediction with all member estimators,
/// König-style online selection scored against realized finish times, and
/// Wu-style percentile bands.
///
/// Drive it with three calls:
/// * [`Ensemble::tick`] (or `tick_observed`) at every sampling point;
/// * [`Ensemble::resolve`] when a query *completes* (realized finish time
///   known) — this is what scores the estimators;
/// * [`Ensemble::forget`] when a query leaves without completing (abort,
///   rejection) — its samples say nothing about estimator quality.
pub struct Ensemble {
    estimators: Vec<Box<dyn Estimator>>,
    cfg: EnsembleConfig,
    /// Per-estimator `(decayed error sum, decayed weight)`.
    scores: Vec<(f64, f64)>,
    residuals: Vec<Ring>,
    /// Per-query active estimator index.
    choice: BTreeMap<u64, u32>,
    pending: Vec<Pending>,
    /// Interned `core.ensemble.err.<name>` histogram names.
    err_hists: Vec<&'static str>,
    obs: Obs,
    resolved: u64,
    switches: u64,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("estimators", &self.names())
            .field("scores", &self.scores)
            .field("choice", &self.choice)
            .field("pending", &self.pending.len())
            .field("resolved", &self.resolved)
            .field("switches", &self.switches)
            .finish()
    }
}

impl Ensemble {
    /// Build an ensemble over the given member estimators. The member at
    /// index 0 is the default choice before any realized finish has been
    /// scored, so put the best prior there.
    pub fn new(estimators: Vec<Box<dyn Estimator>>, cfg: EnsembleConfig) -> Self {
        let n = estimators.len();
        let err_hists = estimators
            .iter()
            .map(|e| mqpi_obs::intern(&format!("core.ensemble.err.{}", e.name())))
            .collect();
        Ensemble {
            estimators,
            cfg,
            scores: vec![(0.0, 0.0); n],
            residuals: vec![Ring::new(cfg.window); n],
            choice: BTreeMap::new(),
            pending: Vec::new(),
            err_hists,
            obs: Obs::disabled(),
            resolved: 0,
            switches: 0,
        }
    }

    /// The standard five-member lineup: `multi` (the paper's PI, default
    /// choice), `single`, `dne`, `tgn`, and `ewma` with the given
    /// smoothing constant.
    pub fn standard(visibility: Visibility, ewma_tau: f64) -> Self {
        Ensemble::new(
            vec![
                Box::new(MultiQueryPi::new(visibility)),
                Box::new(SingleQueryPi::new()),
                Box::new(DriverNodePi::new()),
                Box::new(TotalWorkPi::new()),
                Box::new(SpeedEwmaPi::new(ewma_tau)),
            ],
            EnsembleConfig::default(),
        )
    }

    /// Attach an observability handle; selector decisions, ensemble
    /// estimates, and per-estimator error histograms are recorded on it.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Member estimator names, in index order.
    pub fn names(&self) -> Vec<&'static str> {
        self.estimators.iter().map(|e| e.name()).collect()
    }

    /// Windowed decayed error score of member `i` — `inf` until the
    /// member has accumulated [`EnsembleConfig::min_weight`] of decayed
    /// evidence. One resolved query is one observation; letting a single
    /// observation rank the members would hand selection to whichever
    /// member happened to fit the one query that finished first.
    pub fn score(&self, i: usize) -> f64 {
        let (s, w) = self.scores[i];
        if w >= self.cfg.min_weight && w > 0.0 {
            s / w
        } else {
            f64::INFINITY
        }
    }

    /// Resolved (tick, query) samples scored so far.
    pub fn resolved(&self) -> u64 {
        self.resolved
    }

    /// Estimator switches performed so far (assignments excluded).
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Relative rate-uncertainty `d` of a snapshot: how far the observed
    /// speeds of the monitored queries collectively sit from their nominal
    /// fair shares. `d = 0` when they agree; a rate dip the PI cannot see
    /// (`C` halved ⇒ observed ≈ half of fair share) pushes `d` toward 0.5.
    fn rate_uncertainty(snap: &SystemSnapshot) -> f64 {
        let total_w: f64 = snap
            .running
            .iter()
            .filter(|r| !r.blocked)
            .map(|r| r.weight)
            .sum();
        if total_w <= 0.0 || snap.rate.is_nan() || snap.rate <= 0.0 {
            return 0.0;
        }
        let (mut observed, mut fair) = (0.0, 0.0);
        for q in snap.running.iter().filter(|r| !r.blocked) {
            if let Some(s) = q.observed_speed {
                if s.is_finite() && s >= 0.0 {
                    observed += s;
                    fair += snap.rate * q.weight / total_w;
                }
            }
        }
        if fair <= 0.0 {
            return 0.0;
        }
        ((observed / fair) - 1.0).abs().clamp(0.0, 0.9)
    }

    /// One sampling tick: run every member estimator over the snapshot,
    /// buffer the samples for later scoring, make selector decisions, and
    /// band the chosen estimates.
    pub fn tick(&mut self, snap: &SystemSnapshot) -> EnsembleTick {
        let sets: Vec<EstimateSet> = self
            .estimators
            .iter_mut()
            .map(|e| e.estimates(snap))
            .collect();

        let mut ids: Vec<u64> = snap
            .running
            .iter()
            .filter(|q| !q.blocked)
            .map(|q| q.id)
            .collect();
        ids.sort_unstable();

        for &id in &ids {
            let ests: Vec<f64> = sets.iter().map(|s| s.get(id).unwrap_or(f64::NAN)).collect();
            self.pending.push(Pending {
                at: snap.time,
                id,
                ests,
            });
        }
        if self.pending.len() > self.cfg.max_pending {
            let excess = self.pending.len() - self.cfg.max_pending;
            self.pending.drain(0..excess);
        }

        // Selection: one global best (ties break toward the lower index,
        // i.e. the stronger prior), switched per query behind two-armed
        // hysteresis — the challenger must beat the defender by both a
        // relative margin and an absolute error gap. Assignment of a new
        // query plays the best against the lineup's prior (index 0) under
        // the same rule, so near-ties always resolve toward the prior.
        let scores: Vec<f64> = (0..self.estimators.len()).map(|i| self.score(i)).collect();
        let beats = |challenger: f64, defender: f64| {
            challenger.is_finite()
                && challenger < defender * (1.0 - self.cfg.switch_margin)
                && defender - challenger > self.cfg.min_gain
        };
        let best = scores
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| f64::total_cmp(a, b))
            .map_or(0, |(i, _)| i) as u32;
        let mut decisions = Vec::new();
        for &id in &ids {
            match self.choice.get(&id).copied() {
                None => {
                    let assign = if beats(scores[best as usize], scores[0]) {
                        best
                    } else {
                        0
                    };
                    self.choice.insert(id, assign);
                    decisions.push(SelectorDecision {
                        id,
                        from: "-",
                        to: self.estimators[assign as usize].name(),
                        score: scores[assign as usize],
                    });
                }
                Some(cur) if cur != best => {
                    let (b, c) = (scores[best as usize], scores[cur as usize]);
                    if beats(b, c) {
                        self.choice.insert(id, best);
                        self.switches += 1;
                        decisions.push(SelectorDecision {
                            id,
                            from: self.estimators[cur as usize].name(),
                            to: self.estimators[best as usize].name(),
                            score: b,
                        });
                    }
                }
                _ => {}
            }
        }

        // Bands: the chosen estimator's raw point is the p50, bracketed by
        // its empirical residual quantiles and widened by the
        // rate-uncertainty prior. The p50 is deliberately *not* rescaled
        // by the median residual ratio: ratios only arrive when a query
        // resolves and each resolution spans the query's whole life, so
        // after a regime change (an arrival burst ends, a fault clears)
        // the window stays stale long after the members' points have
        // recovered — a median "debias" then multiplies an accurate point
        // by the old regime's bias. The stale window is harmless on the
        // band edges, where it can only widen the bracket.
        let d = Self::rate_uncertainty(snap);
        let mut banded = Vec::with_capacity(ids.len());
        for &id in &ids {
            let k = self.choice.get(&id).copied().unwrap_or(0) as usize;
            // The chosen estimator covers all running unblocked queries by
            // construction; fall back across members defensively anyway.
            let Some(p) = sets[k]
                .get(id)
                .or_else(|| sets.iter().find_map(|s| s.get(id)))
            else {
                continue;
            };
            let ring = &self.residuals[k];
            let (lo_q, hi_q) = if ring.len() >= self.cfg.min_residuals {
                let sorted = ring.sorted();
                (ring.quantile(&sorted, 0.10), ring.quantile(&sorted, 0.90))
            } else {
                (self.cfg.prior_lo, self.cfg.prior_hi)
            };
            let lo = lo_q.min(1.0 - d - self.cfg.base_spread).max(0.01);
            let hi = hi_q.max(1.0 + d + self.cfg.base_spread);
            banded.push(BandedEstimate {
                id,
                band: Band::sanitized(p * lo, p, p * hi),
                chosen: self.estimators[k].name(),
            });
        }

        EnsembleTick {
            banded,
            sets,
            decisions,
        }
    }

    /// [`Ensemble::tick`], additionally recording the pass on the attached
    /// [`Obs`] handle: `selector` trace events for every decision, one
    /// `estimate` event per query (`pi=ensemble`, the band p50), the
    /// `core.predict.ensemble` span, and assignment/switch counters. With
    /// a disabled handle this is exactly `tick`.
    pub fn tick_observed(&mut self, snap: &SystemSnapshot) -> EnsembleTick {
        let out = self.tick(snap);
        if !self.obs.is_enabled() {
            return out;
        }
        for dec in &out.decisions {
            self.obs.emit(
                snap.time,
                TraceKind::Selector {
                    id: dec.id,
                    from: dec.from,
                    to: dec.to,
                    score: dec.score,
                },
            );
            let counter = if dec.from == "-" {
                "core.ensemble.assigns"
            } else {
                "core.ensemble.switches"
            };
            self.obs.counter_add(counter, 1);
        }
        crate::observe::observe_estimates(
            &self.obs,
            "ensemble",
            "core.predict.ensemble",
            snap.time,
            &out.point_set(),
        );
        out
    }

    /// Score every buffered sample of query `id` against its realized
    /// completion at `finished_at`, then drop the query's state. Call this
    /// only for queries that ran to completion.
    ///
    /// Three deliberate scoring rules keep the selector honest:
    ///
    /// * Only samples *every* member estimated enter the scores. A member
    ///   with wider coverage (the queue-aware PI estimates queued queries
    ///   nobody else sees) must not be penalized on hard samples its
    ///   rivals were never tested on.
    /// * The decay applies once per resolution, to the query's *mean*
    ///   sample error — not once per sample. A long-lived query resolves
    ///   with dozens of buffered samples; per-sample decay would let that
    ///   single query flush the entire score window and leave selection
    ///   chasing whichever query finished last.
    /// * Non-stationary workloads are handled by recency-weighting the
    ///   samples within a resolution (geometric in reverse sample order,
    ///   reusing [`EnsembleConfig::decay`]). A long-lived query's early
    ///   samples were estimated under a regime that may have ended — an
    ///   arrival burst, a fault window — and weighting them equally would
    ///   keep rewarding whichever member fit the *old* regime for the
    ///   whole life of every query that lived through it.
    pub fn resolve(&mut self, id: u64, finished_at: f64) {
        let n = self.estimators.len();
        // Scorable sample indices, in time order (pending is appended in
        // tick order, so insertion order is time order).
        let idxs: Vec<usize> = (0..self.pending.len())
            .filter(|&pi| {
                let p = &self.pending[pi];
                p.id == id
                    && finished_at - p.at >= self.cfg.min_actual
                    && p.ests.iter().all(|e| e.is_finite())
            })
            .collect();
        let k = idxs.len();
        for i in 0..n {
            let (mut err_sum, mut wgt_sum) = (0.0, 0.0);
            for (j, &pi) in idxs.iter().enumerate() {
                let (at, est) = (self.pending[pi].at, self.pending[pi].ests[i]);
                let actual = finished_at - at;
                let err = relative_error(est, actual).min(self.cfg.err_cap);
                let wgt = self.cfg.decay.powi((k - 1 - j) as i32);
                err_sum += err * wgt;
                wgt_sum += wgt;
                let ratio = (actual / est.max(1e-9)).clamp(1e-3, 1e3);
                self.residuals[i].push(ratio);
                if self.obs.is_enabled() {
                    self.obs
                        .histogram_observe(self.err_hists[i], ERROR_BUCKETS, err);
                }
            }
            if wgt_sum > 0.0 {
                let (s, w) = &mut self.scores[i];
                *s = *s * self.cfg.decay + err_sum / wgt_sum;
                *w = *w * self.cfg.decay + 1.0;
            }
        }
        let scored = k as u64;
        self.resolved += scored;
        if scored > 0 && self.obs.is_enabled() {
            self.obs.counter_add("core.ensemble.resolved", scored);
        }
        self.pending.retain(|p| p.id != id);
        self.choice.remove(&id);
    }

    /// Drop all state for a query that left without completing (abort,
    /// failure, rejection): its samples carry no estimator-quality signal.
    pub fn forget(&mut self, id: u64) {
        self.pending.retain(|p| p.id != id);
        self.choice.remove(&id);
    }

    /// Serialize all mutable ensemble state — scores, residual windows,
    /// per-query choices, unresolved samples, counters, and each member
    /// estimator's own state. Restoring into a freshly constructed
    /// ensemble with the same member lineup reproduces subsequent output
    /// bit for bit.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.put_usize(self.estimators.len());
        for &(s, w) in &self.scores {
            e.put_f64(s);
            e.put_f64(w);
        }
        for r in &self.residuals {
            e.put_usize(r.buf.len());
            for &v in &r.buf {
                e.put_f64(v);
            }
            e.put_usize(r.next);
        }
        e.put_usize(self.choice.len());
        for (&id, &c) in &self.choice {
            e.put_u64(id);
            e.put_u32(c);
        }
        e.put_usize(self.pending.len());
        for p in &self.pending {
            e.put_f64(p.at);
            e.put_u64(p.id);
            for &v in &p.ests {
                e.put_f64(v);
            }
        }
        e.put_u64(self.resolved);
        e.put_u64(self.switches);
        for est in &self.estimators {
            est.encode_state(&mut e);
        }
        e.into_bytes()
    }

    /// Restore state captured by [`Ensemble::checkpoint`] into this
    /// ensemble. The member lineup (count and order) must match the one
    /// the snapshot was taken from.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut d = Dec::new(bytes);
        let n = d.get_usize()?;
        if n != self.estimators.len() {
            return Err(CkptError::Corrupt(format!(
                "ensemble snapshot has {n} estimators, this ensemble has {}",
                self.estimators.len()
            )));
        }
        for i in 0..n {
            self.scores[i] = (d.get_f64()?, d.get_f64()?);
        }
        for i in 0..n {
            let len = d.get_usize()?;
            if len > self.cfg.window.max(1) {
                return Err(CkptError::Corrupt(format!(
                    "residual window of {len} exceeds capacity {}",
                    self.cfg.window
                )));
            }
            let mut buf = Vec::with_capacity(len);
            for _ in 0..len {
                buf.push(d.get_f64()?);
            }
            let next = d.get_usize()?;
            if next > len {
                return Err(CkptError::Corrupt(format!(
                    "residual cursor {next} beyond window of {len}"
                )));
            }
            self.residuals[i] = Ring {
                cap: self.cfg.window.max(1),
                buf,
                next,
            };
        }
        self.choice.clear();
        let nc = d.get_usize()?;
        for _ in 0..nc {
            let id = d.get_u64()?;
            let c = d.get_u32()?;
            if c as usize >= n {
                return Err(CkptError::Corrupt(format!(
                    "choice index {c} out of range for {n} estimators"
                )));
            }
            self.choice.insert(id, c);
        }
        self.pending.clear();
        let np = d.get_usize()?;
        for _ in 0..np {
            let at = d.get_f64()?;
            let id = d.get_u64()?;
            let mut ests = Vec::with_capacity(n);
            for _ in 0..n {
                ests.push(d.get_f64()?);
            }
            self.pending.push(Pending { at, id, ests });
        }
        self.resolved = d.get_u64()?;
        self.switches = d.get_u64()?;
        for est in &mut self.estimators {
            est.decode_state(&mut d)?;
        }
        if !d.is_exhausted() {
            return Err(CkptError::Corrupt(format!(
                "{} trailing bytes after ensemble state",
                d.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqpi_sim::system::{QueryState, SystemSnapshot};

    fn state(id: u64, remaining: f64, done: f64, speed: Option<f64>) -> QueryState {
        QueryState {
            id,
            name: format!("q{id}").into(),
            weight: 1.0,
            arrived: 0.0,
            started: 0.0,
            done,
            remaining,
            initial_estimate: done + remaining,
            observed_speed: speed,
            blocked: false,
            rolling_back: false,
        }
    }

    fn snap(t: f64, running: Vec<QueryState>) -> SystemSnapshot {
        SystemSnapshot {
            time: t,
            rate: 100.0,
            running,
            queued: vec![],
        }
    }

    fn two_member() -> Ensemble {
        Ensemble::new(
            vec![
                Box::new(MultiQueryPi::new(Visibility::concurrent_only())),
                Box::new(SingleQueryPi::new()),
            ],
            EnsembleConfig::default(),
        )
    }

    #[test]
    fn defaults_to_first_member_and_bands_are_ordered() {
        let mut ens = two_member();
        let s = snap(
            0.0,
            vec![state(1, 500.0, 0.0, None), state(2, 80.0, 0.0, None)],
        );
        let out = ens.tick(&s);
        assert_eq!(out.banded.len(), 2);
        for b in &out.banded {
            assert_eq!(b.chosen, "multi");
            assert!(b.band.p10.is_finite() && b.band.p90.is_finite());
            assert!(b.band.p10 <= b.band.p50 && b.band.p50 <= b.band.p90);
            // Prior spread: the band is genuinely two-sided.
            assert!(b.band.width() > 0.0);
        }
        assert_eq!(out.decisions.len(), 2);
        assert!(out.decisions.iter().all(|d| d.from == "-"));
    }

    #[test]
    fn selector_switches_to_the_estimator_that_proves_right() {
        // Observed speed says 25 U/s while the nominal fair share says 50:
        // the single-query PI (observed) and the multi-query PI (nominal)
        // disagree 2:1. Resolve finishes consistent with the *observed*
        // speed; the selector must abandon the default (multi) for single.
        // One resolved query is all the evidence this scenario has, so the
        // evidence floor is lowered accordingly.
        let mut ens = Ensemble::new(
            vec![
                Box::new(MultiQueryPi::new(Visibility::concurrent_only())),
                Box::new(SingleQueryPi::new()),
            ],
            EnsembleConfig {
                min_weight: 1.0,
                ..EnsembleConfig::default()
            },
        );
        let mk = |t: f64| {
            snap(
                t,
                vec![
                    state(1, 500.0 - 25.0 * t, 25.0 * t, Some(25.0)),
                    state(2, 500.0 - 25.0 * t, 25.0 * t, Some(25.0)),
                ],
            )
        };
        for i in 0..4 {
            let _ = ens.tick(&mk(i as f64));
        }
        // Query 1 "finishes" where the 25 U/s world says it should.
        ens.resolve(1, 20.0);
        assert!(ens.score(1) < ens.score(0), "single should score better");
        let out = ens.tick(&mk(4.0));
        let switched: Vec<_> = out.decisions.iter().filter(|d| d.from != "-").collect();
        assert_eq!(switched.len(), 1, "decisions: {:?}", out.decisions);
        assert_eq!(switched[0].from, "multi");
        assert_eq!(switched[0].to, "single");
        assert_eq!(ens.switches(), 1);
        assert!(out.banded.iter().all(|b| b.chosen == "single"));
    }

    #[test]
    fn thin_evidence_does_not_rank_or_switch() {
        // Same 2:1 disagreement as above, but under the default evidence
        // floor: a single resolved query must not flip the choice, however
        // decisively it favors the challenger.
        let mut ens = two_member();
        let mk = |t: f64| {
            snap(
                t,
                vec![
                    state(1, 500.0 - 25.0 * t, 25.0 * t, Some(25.0)),
                    state(2, 500.0 - 25.0 * t, 25.0 * t, Some(25.0)),
                ],
            )
        };
        for i in 0..4 {
            let _ = ens.tick(&mk(i as f64));
        }
        ens.resolve(1, 20.0);
        assert!(
            ens.score(0).is_infinite() && ens.score(1).is_infinite(),
            "one resolution must stay below the evidence floor"
        );
        let out = ens.tick(&mk(4.0));
        assert!(
            out.decisions.iter().all(|d| d.from == "-"),
            "no switches on thin evidence: {:?}",
            out.decisions
        );
        assert_eq!(ens.switches(), 0);
        assert!(out.banded.iter().all(|b| b.chosen == "multi"));
    }

    #[test]
    fn forget_drops_state_without_scoring() {
        let mut ens = two_member();
        let s = snap(0.0, vec![state(1, 500.0, 0.0, None)]);
        let _ = ens.tick(&s);
        ens.forget(1);
        assert_eq!(ens.resolved(), 0);
        assert!(ens.score(0).is_infinite());
    }

    #[test]
    fn near_zero_actuals_are_not_scored() {
        let mut ens = two_member();
        let s = snap(0.0, vec![state(1, 500.0, 0.0, None)]);
        let _ = ens.tick(&s);
        ens.resolve(1, 0.5); // below min_actual
        assert_eq!(ens.resolved(), 0);
        assert!(ens.score(0).is_infinite());
    }

    #[test]
    fn empirical_residuals_tighten_the_band() {
        let cfg = EnsembleConfig {
            min_residuals: 4,
            ..Default::default()
        };
        let mut ens = Ensemble::new(
            vec![Box::new(MultiQueryPi::new(Visibility::concurrent_only()))],
            cfg,
        );
        // Several perfectly predicted completions: one lone query at rate
        // 100 with cost 500 finishes in exactly 5 s.
        for round in 0..6u64 {
            let id = round + 1;
            let t0 = round as f64 * 10.0;
            let s = snap(t0, vec![state(id, 500.0, 0.0, Some(100.0))]);
            let _ = ens.tick(&s);
            ens.resolve(id, t0 + 5.0);
        }
        let s = snap(100.0, vec![state(99, 500.0, 0.0, Some(100.0))]);
        let out = ens.tick(&s);
        let b = out.banded[0].band;
        // Residual ratios are all 1.0, so the empirical quantiles collapse
        // and only the rate-uncertainty floor keeps the band open.
        assert!((b.p50 - 5.0).abs() < 1e-9, "p50 = {}", b.p50);
        assert!(b.width() < 5.0 * 0.2, "width = {}", b.width());
        assert!(b.covers(5.0));
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_identical_and_resumes_equal() {
        let run = |split: bool| -> (Vec<u8>, String) {
            let mut ens = Ensemble::standard(Visibility::concurrent_only(), 4.0);
            let mk = |t: f64| {
                snap(
                    t,
                    vec![
                        state(1, 600.0 - 30.0 * t, 30.0 * t, Some(30.0)),
                        state(2, 900.0 - 40.0 * t, 40.0 * t, Some(40.0)),
                    ],
                )
            };
            let mut log = String::new();
            for i in 0..8 {
                if split && i == 4 {
                    let bytes = ens.checkpoint();
                    let mut fresh = Ensemble::standard(Visibility::concurrent_only(), 4.0);
                    fresh.restore_state(&bytes).unwrap();
                    // The snapshot must re-encode byte-identically.
                    assert_eq!(bytes, fresh.checkpoint());
                    ens = fresh;
                }
                if i == 3 {
                    ens.resolve(1, 11.0);
                }
                let out = ens.tick(&mk(i as f64));
                for b in &out.banded {
                    log.push_str(&format!(
                        "{} {} {:.17e} {:.17e} {:.17e}\n",
                        b.id, b.chosen, b.band.p10, b.band.p50, b.band.p90
                    ));
                }
            }
            (ens.checkpoint(), log)
        };
        let (bytes_a, log_a) = run(false);
        let (bytes_b, log_b) = run(true);
        assert_eq!(log_a, log_b, "resumed tick outputs diverged");
        assert_eq!(bytes_a, bytes_b, "final checkpoints diverged");
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let mut ens = two_member();
        let s = snap(0.0, vec![state(1, 500.0, 0.0, None)]);
        let _ = ens.tick(&s);
        let bytes = ens.checkpoint();
        let mut fresh = two_member();
        // Truncated.
        assert!(fresh.restore_state(&bytes[..bytes.len() - 1]).is_err());
        // Wrong lineup.
        let mut solo = Ensemble::new(
            vec![Box::new(SingleQueryPi::new())],
            EnsembleConfig::default(),
        );
        assert!(solo.restore_state(&bytes).is_err());
        // Intact bytes still restore.
        assert!(fresh.restore_state(&bytes).is_ok());
    }

    #[test]
    fn observed_tick_emits_selector_and_estimate_events() {
        let mut ens = two_member();
        ens.set_obs(Obs::enabled());
        let s = snap(0.0, vec![state(1, 500.0, 0.0, None)]);
        let _ = ens.tick_observed(&s);
        let obs_handle = {
            // Re-borrow through a fresh tick to read counters.
            ens.obs.clone()
        };
        let trace = obs_handle.render_trace();
        assert!(trace.contains("selector id=1 from=- to=multi"), "{trace}");
        assert!(trace.contains("estimate pi=ensemble id=1"), "{trace}");
        assert_eq!(obs_handle.counter("core.ensemble.assigns"), 1);
        // Resolution records error histograms.
        ens.resolve(1, 10.0);
        assert_eq!(obs_handle.counter("core.ensemble.resolved"), 1);
        assert!(obs_handle.metrics_csv().contains("core.ensemble.err.multi"));
    }
}
