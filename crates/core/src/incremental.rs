//! Incrementally maintained GPS fluid predictor (delta updates).
//!
//! [`fluid::predict`](crate::fluid::predict) rebuilds the whole virtual-time
//! stage list from scratch on every call — `O(n log n)` per tick. A serving
//! deployment refreshing thousands of sessions cannot afford that, so
//! [`IncrementalFluid`] keeps the model *alive* between events and applies
//! arrivals, finishes, aborts, re-weights, cost refinements, and rate
//! changes as `O(log n)` delta updates (rate changes and time advances that
//! cross no completion are `O(1)`).
//!
//! ## Data structure
//!
//! Under GPS the virtual finish tag `v_i = V_admit + c_i/w_i` of an admitted
//! query never changes while it runs, and virtual time `V` advances at
//! `rate/W` per real second. Both facts make deltas cheap:
//!
//! * Live queries sit in a **treap** keyed by `(v_i, seq)` (admission
//!   sequence breaks ties deterministically) with per-subtree aggregates
//!   `Σ w_j`, `Σ w_j·v_j`, and node counts. Arrive/finish/abort are one
//!   tree insert/delete; re-weight and cost refinement are a delete plus an
//!   insert with a re-derived tag.
//! * **Lazy global-rate rescaling**: tags are rate-independent, so a rate
//!   change stores one scalar — no per-node work. The same laziness covers
//!   the virtual-time origin: aggregates store `Σ w_j·v_j`, and every query
//!   subtracts `V·Σ w_j` at read time, so advancing `V` touches nothing.
//! * The remaining time of one query is a prefix-aggregate query:
//!
//!   ```text
//!   t(v_i) = [ Σ_{(v_j,s_j) ≤ (v_i,s_i)} w_j·(v_j − V)  +  (v_i − V)·W_suffix ] / rate
//!   ```
//!
//!   one root-to-node descent, `O(log n)`.
//!
//! ## Determinism rules
//!
//! Treap priorities are a splitmix64 hash of the admission sequence, and
//! priority ties (never observed; guarded anyway) break by sequence, so the
//! tree shape is the *unique* treap over the live `(key, priority)` set —
//! independent of the order events built it. Aggregates are recomputed from
//! children on every structural change (never incrementally adjusted), so
//! they are a pure function of shape and weights. Consequently the same
//! event sequence produces bit-identical state on every run, and
//! [`IncrementalFluid::encode`] / [`IncrementalFluid::decode`] round-trip
//! to byte-identical re-encodings (the codec writes nodes in admission
//! order; the decoder re-inserts them and lands on the same unique treap).
//!
//! Full estimate sets ([`IncrementalFluid::estimates_full`]) extract the
//! live set in admission order and run the *same* `predict` kernel a fresh
//! caller would, so they are bit-identical to a fresh `predict` call on the
//! maintained state by construction — `predict` stays the oracle, and the
//! property suite (`tests/prop_incremental.rs`) drives random event
//! sequences through both paths to hold the delta path to it.

use std::collections::HashMap;

use mqpi_ckpt::{CkptError, Dec, Enc};

use crate::fluid::{predict, FluidPrediction, FluidQuery, FutureArrivals};

const NIL: u32 = u32::MAX;
/// Residual-work epsilon, identical to `fluid::predict`'s completion sweep.
const EPS: f64 = 1e-9;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Counts of delta operations applied since construction (or the values
/// restored from a checkpoint). Benchmarks and the obs layer read these to
/// report how much full-rebuild work the incremental path avoided.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DeltaCounters {
    pub arrivals: u64,
    pub finishes: u64,
    pub aborts: u64,
    pub reweights: u64,
    pub cost_refinements: u64,
    pub rate_changes: u64,
    pub advances: u64,
    /// Queries whose tags were crossed by [`IncrementalFluid::advance`] and
    /// popped into the due buffer.
    pub completions: u64,
    /// Full `predict` invocations via [`IncrementalFluid::estimates_full`].
    pub full_rebuilds: u64,
}

/// Struct-of-arrays node storage for the treap plus an intrusive
/// admission-order list and an intrusive free list (threaded through
/// `left`), so steady-state churn reuses slots without allocating.
#[derive(Debug, Default)]
struct Nodes {
    id: Vec<u64>,
    weight: Vec<f64>,
    /// Virtual finish tag `v = V_admit + cost/weight`.
    tag: Vec<f64>,
    seq: Vec<u64>,
    prio: Vec<u64>,
    left: Vec<u32>,
    right: Vec<u32>,
    /// Subtree `Σ w`.
    sub_w: Vec<f64>,
    /// Subtree `Σ w·v`.
    sub_wv: Vec<f64>,
    sub_n: Vec<u32>,
    /// Admission-order doubly-linked list.
    seq_prev: Vec<u32>,
    seq_next: Vec<u32>,
    free_head: u32,
}

impl Nodes {
    fn with_capacity(cap: usize) -> Self {
        let mut n = Nodes {
            free_head: NIL,
            ..Nodes::default()
        };
        n.reserve(cap);
        n
    }

    fn reserve(&mut self, cap: usize) {
        self.id.reserve(cap);
        self.weight.reserve(cap);
        self.tag.reserve(cap);
        self.seq.reserve(cap);
        self.prio.reserve(cap);
        self.left.reserve(cap);
        self.right.reserve(cap);
        self.sub_w.reserve(cap);
        self.sub_wv.reserve(cap);
        self.sub_n.reserve(cap);
        self.seq_prev.reserve(cap);
        self.seq_next.reserve(cap);
    }

    fn alloc(&mut self, id: u64, weight: f64, tag: f64, seq: u64) -> u32 {
        let prio = splitmix64(seq);
        if self.free_head != NIL {
            let s = self.free_head;
            let i = s as usize;
            self.free_head = self.left[i];
            self.id[i] = id;
            self.weight[i] = weight;
            self.tag[i] = tag;
            self.seq[i] = seq;
            self.prio[i] = prio;
            self.left[i] = NIL;
            self.right[i] = NIL;
            self.sub_w[i] = weight;
            self.sub_wv[i] = weight * tag;
            self.sub_n[i] = 1;
            self.seq_prev[i] = NIL;
            self.seq_next[i] = NIL;
            return s;
        }
        let s = self.id.len() as u32;
        self.id.push(id);
        self.weight.push(weight);
        self.tag.push(tag);
        self.seq.push(seq);
        self.prio.push(prio);
        self.left.push(NIL);
        self.right.push(NIL);
        self.sub_w.push(weight);
        self.sub_wv.push(weight * tag);
        self.sub_n.push(1);
        self.seq_prev.push(NIL);
        self.seq_next.push(NIL);
        s
    }

    fn free(&mut self, s: u32) {
        self.left[s as usize] = self.free_head;
        self.free_head = s;
    }

    /// `(tag, seq)` of `a` strictly before the probe key.
    fn key_less(&self, a: u32, tag: f64, seq: u64) -> bool {
        let i = a as usize;
        match self.tag[i].total_cmp(&tag) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.seq[i] < seq,
        }
    }

    /// Heap order: does `a` outrank `b` as a treap root?
    fn prio_above(&self, a: u32, b: u32) -> bool {
        let (ai, bi) = (a as usize, b as usize);
        self.prio[ai] > self.prio[bi]
            || (self.prio[ai] == self.prio[bi] && self.seq[ai] < self.seq[bi])
    }

    /// Recompute aggregates from children; the *only* way aggregates are
    /// ever written, so their values are a pure function of tree shape —
    /// a rebuilt tree of the same shape carries bit-identical sums.
    fn pull(&mut self, t: u32) {
        let i = t as usize;
        let (l, r) = (self.left[i], self.right[i]);
        let (lw, lwv, ln) = if l == NIL {
            (0.0, 0.0, 0)
        } else {
            let li = l as usize;
            (self.sub_w[li], self.sub_wv[li], self.sub_n[li])
        };
        let (rw, rwv, rn) = if r == NIL {
            (0.0, 0.0, 0)
        } else {
            let ri = r as usize;
            (self.sub_w[ri], self.sub_wv[ri], self.sub_n[ri])
        };
        self.sub_w[i] = lw + self.weight[i] + rw;
        self.sub_wv[i] = lwv + self.weight[i] * self.tag[i] + rwv;
        self.sub_n[i] = ln + 1 + rn;
    }

    /// Split into `(keys < (tag, seq), keys ≥ (tag, seq))`.
    fn split(&mut self, t: u32, tag: f64, seq: u64) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.key_less(t, tag, seq) {
            let (a, b) = self.split(self.right[t as usize], tag, seq);
            self.right[t as usize] = a;
            self.pull(t);
            (t, b)
        } else {
            let (a, b) = self.split(self.left[t as usize], tag, seq);
            self.left[t as usize] = b;
            self.pull(t);
            (a, t)
        }
    }

    /// Merge trees where every key in `a` precedes every key in `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.prio_above(a, b) {
            let m = self.merge(self.right[a as usize], b);
            self.right[a as usize] = m;
            self.pull(a);
            a
        } else {
            let m = self.merge(a, self.left[b as usize]);
            self.left[b as usize] = m;
            self.pull(b);
            b
        }
    }

    /// Remove the node with exactly this key; returns the new subtree root.
    /// The key is known to exist (looked up through `by_id`).
    fn remove(&mut self, t: u32, slot: u32, tag: f64, seq: u64) -> u32 {
        debug_assert_ne!(t, NIL, "removal key must exist in the treap");
        if t == slot {
            return self.merge(self.left[t as usize], self.right[t as usize]);
        }
        if self.key_less(t, tag, seq) {
            let r = self.remove(self.right[t as usize], slot, tag, seq);
            self.right[t as usize] = r;
        } else {
            let l = self.remove(self.left[t as usize], slot, tag, seq);
            self.left[t as usize] = l;
        }
        self.pull(t);
        t
    }

    fn leftmost(&self, mut t: u32) -> u32 {
        while t != NIL && self.left[t as usize] != NIL {
            t = self.left[t as usize];
        }
        t
    }
}

/// Maintained GPS fluid model over the currently admitted query set.
///
/// The structure is the *admitted* set only: the owning service layers the
/// admission queue and predicted future arrivals on top (exactly the inputs
/// `fluid::predict` takes alongside `running`). See the module docs for the
/// data-structure and determinism story.
#[derive(Debug)]
pub struct IncrementalFluid {
    rate: f64,
    /// Virtual time `V`.
    vt: f64,
    next_seq: u64,
    root: u32,
    nodes: Nodes,
    by_id: HashMap<u64, u32>,
    /// Admission-order list endpoints.
    head: u32,
    tail: u32,
    /// Completions crossed by `advance`, in completion order, until the
    /// caller drains them.
    due: Vec<u64>,
    counters: DeltaCounters,
    scratch: Vec<FluidQuery>,
}

impl IncrementalFluid {
    /// # Panics
    /// Panics if `rate` is not positive.
    pub fn new(rate: f64) -> Self {
        Self::with_capacity(rate, 0)
    }

    /// # Panics
    /// Panics if `rate` is not positive.
    pub fn with_capacity(rate: f64, cap: usize) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        IncrementalFluid {
            rate,
            vt: 0.0,
            next_seq: 0,
            root: NIL,
            nodes: Nodes::with_capacity(cap),
            by_id: HashMap::with_capacity(cap),
            head: NIL,
            tail: NIL,
            due: Vec::with_capacity(cap.min(64)),
            counters: DeltaCounters::default(),
            scratch: Vec::with_capacity(cap),
        }
    }

    /// Number of live (admitted, unfinished) queries.
    pub fn len(&self) -> usize {
        if self.root == NIL {
            0
        } else {
            self.nodes.sub_n[self.root as usize] as usize
        }
    }

    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Current aggregate weight `W` of the live set.
    pub fn total_weight(&self) -> f64 {
        if self.root == NIL {
            0.0
        } else {
            self.nodes.sub_w[self.root as usize]
        }
    }

    /// Current virtual time `V`.
    pub fn virtual_time(&self) -> f64 {
        self.vt
    }

    /// Current aggregate processing rate `C`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    pub fn contains(&self, id: u64) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Delta-operation counts since construction/restore.
    pub fn counters(&self) -> DeltaCounters {
        self.counters
    }

    /// Scheduling weight of a live query.
    pub fn weight_of(&self, id: u64) -> Option<f64> {
        let s = *self.by_id.get(&id)?;
        Some(self.nodes.weight[s as usize])
    }

    /// Remaining cost of a live query under the maintained model:
    /// `(v − V)·w`, clamped at zero.
    pub fn remaining_cost(&self, id: u64) -> Option<f64> {
        let s = *self.by_id.get(&id)?;
        let i = s as usize;
        Some(((self.nodes.tag[i] - self.vt) * self.nodes.weight[i]).max(0.0))
    }

    fn link_tail(&mut self, s: u32) {
        if self.tail == NIL {
            self.head = s;
        } else {
            self.nodes.seq_next[self.tail as usize] = s;
            self.nodes.seq_prev[s as usize] = self.tail;
        }
        self.tail = s;
    }

    fn unlink(&mut self, s: u32) {
        let i = s as usize;
        let (p, n) = (self.nodes.seq_prev[i], self.nodes.seq_next[i]);
        if p == NIL {
            self.head = n;
        } else {
            self.nodes.seq_next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.nodes.seq_prev[n as usize] = p;
        }
    }

    fn insert_tree(&mut self, s: u32) {
        let (tag, seq) = (self.nodes.tag[s as usize], self.nodes.seq[s as usize]);
        let (l, r) = self.nodes.split(self.root, tag, seq);
        let lm = self.nodes.merge(l, s);
        self.root = self.nodes.merge(lm, r);
    }

    fn remove_tree(&mut self, s: u32) {
        let (tag, seq) = (self.nodes.tag[s as usize], self.nodes.seq[s as usize]);
        self.root = self.nodes.remove(self.root, s, tag, seq);
    }

    /// Admit a query with the given remaining cost and weight. Its virtual
    /// finish tag `V + cost/weight` is fixed here, exactly as
    /// `fluid::predict` admits it.
    ///
    /// # Panics
    /// Panics if `weight` is not positive or `id` is already live.
    pub fn arrive(&mut self, id: u64, cost: f64, weight: f64) {
        assert!(weight > 0.0, "weights must be positive");
        let tag = self.vt + cost.max(0.0) / weight;
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = self.nodes.alloc(id, weight, tag, seq);
        let prev = self.by_id.insert(id, s);
        assert!(prev.is_none(), "query {id} is already live");
        self.link_tail(s);
        self.insert_tree(s);
        self.counters.arrivals += 1;
    }

    fn remove_live(&mut self, id: u64) -> bool {
        let Some(s) = self.by_id.remove(&id) else {
            return false;
        };
        self.remove_tree(s);
        self.unlink(s);
        self.nodes.free(s);
        true
    }

    /// Remove a query that completed (e.g. the executor reported it done
    /// ahead of the model). Returns false if `id` is not live.
    pub fn finish(&mut self, id: u64) -> bool {
        let ok = self.remove_live(id);
        if ok {
            self.counters.finishes += 1;
        }
        ok
    }

    /// Remove an aborted query. Returns false if `id` is not live.
    pub fn abort(&mut self, id: u64) -> bool {
        let ok = self.remove_live(id);
        if ok {
            self.counters.aborts += 1;
        }
        ok
    }

    /// Change a live query's scheduling weight, preserving its remaining
    /// cost `(v − V)·w_old` and re-deriving the tag under the new weight.
    /// Returns false if `id` is not live.
    ///
    /// # Panics
    /// Panics if `weight` is not positive.
    pub fn reweight(&mut self, id: u64, weight: f64) -> bool {
        assert!(weight > 0.0, "weights must be positive");
        let Some(&s) = self.by_id.get(&id) else {
            return false;
        };
        let i = s as usize;
        let cost = ((self.nodes.tag[i] - self.vt) * self.nodes.weight[i]).max(0.0);
        self.remove_tree(s);
        self.nodes.weight[i] = weight;
        self.nodes.tag[i] = self.vt + cost / weight;
        self.nodes.sub_w[i] = weight;
        self.nodes.sub_wv[i] = weight * self.nodes.tag[i];
        self.nodes.sub_n[i] = 1;
        self.nodes.left[i] = NIL;
        self.nodes.right[i] = NIL;
        self.insert_tree(s);
        self.counters.reweights += 1;
        true
    }

    /// Replace a live query's remaining cost (cost refinement, §2.1).
    /// Returns false if `id` is not live.
    pub fn refine_cost(&mut self, id: u64, cost: f64) -> bool {
        let Some(&s) = self.by_id.get(&id) else {
            return false;
        };
        let i = s as usize;
        self.remove_tree(s);
        self.nodes.tag[i] = self.vt + cost.max(0.0) / self.nodes.weight[i];
        self.nodes.sub_w[i] = self.nodes.weight[i];
        self.nodes.sub_wv[i] = self.nodes.weight[i] * self.nodes.tag[i];
        self.nodes.sub_n[i] = 1;
        self.nodes.left[i] = NIL;
        self.nodes.right[i] = NIL;
        self.insert_tree(s);
        self.counters.cost_refinements += 1;
        true
    }

    /// Change the aggregate rate `C`. O(1): tags are rate-independent, so
    /// nothing in the tree moves (the lazy rescaling the module docs
    /// describe).
    ///
    /// # Panics
    /// Panics if `rate` is not positive.
    pub fn set_rate(&mut self, rate: f64) {
        assert!(rate > 0.0, "rate must be positive");
        self.rate = rate;
        self.counters.rate_changes += 1;
    }

    /// Real seconds until the next completion of the live set (ignoring
    /// queue/future injections), or `None` when idle.
    pub fn next_completion(&self) -> Option<f64> {
        let m = self.nodes.leftmost(self.root);
        if m == NIL {
            return None;
        }
        let w = self.nodes.sub_w[self.root as usize];
        Some(((self.nodes.tag[m as usize] - self.vt) * w / self.rate).max(0.0))
    }

    /// Advance real time by `dt`, crossing any completion tags on the way.
    /// Queries whose tags are crossed leave the live set and are queued in
    /// the due buffer ([`IncrementalFluid::drain_due`]) in completion
    /// order. Advancing an idle model leaves `V` frozen.
    pub fn advance(&mut self, dt: f64) {
        self.counters.advances += 1;
        let mut left = dt.max(0.0);
        loop {
            let m = self.nodes.leftmost(self.root);
            if m == NIL {
                return;
            }
            let w = self.nodes.sub_w[self.root as usize];
            let top = self.nodes.tag[m as usize];
            let dt_finish = ((top - self.vt) * w / self.rate).max(0.0);
            if left < dt_finish {
                self.vt += left * self.rate / w;
                return;
            }
            left -= dt_finish;
            self.vt = self.vt.max(top);
            // Residual work (v − V)·w ≤ EPS counts as finished, mirroring
            // the predict event loop's completion sweep.
            loop {
                let m = self.nodes.leftmost(self.root);
                if m == NIL {
                    break;
                }
                let i = m as usize;
                if (self.nodes.tag[i] - self.vt) * self.nodes.weight[i] > EPS {
                    break;
                }
                let id = self.nodes.id[i];
                self.by_id.remove(&id);
                self.remove_tree(m);
                self.unlink(m);
                self.nodes.free(m);
                self.due.push(id);
                self.counters.completions += 1;
            }
        }
    }

    /// Append completions crossed by [`IncrementalFluid::advance`] (in
    /// completion order) to `out` and clear the internal buffer. The buffer
    /// keeps its capacity — no allocation on the steady-state path.
    pub fn drain_due(&mut self, out: &mut Vec<u64>) {
        out.append(&mut self.due);
    }

    /// Completions crossed by `advance` and not yet drained.
    pub fn due(&self) -> &[u64] {
        &self.due
    }

    /// Remaining real time of one live query — the `O(log n)` point query:
    /// a single descent accumulating prefix aggregates over tags at or
    /// before this query's, plus the suffix weight still running when it
    /// finishes. Returns `None` for ids that are not live (finished,
    /// aborted, or never admitted).
    pub fn estimate(&self, id: u64) -> Option<f64> {
        let s = *self.by_id.get(&id)?;
        let i = s as usize;
        let (tag, seq) = (self.nodes.tag[i], self.nodes.seq[i]);
        let (mut pw, mut pwv) = (0.0, 0.0);
        let mut cur = self.root;
        while cur != NIL {
            let c = cur as usize;
            if self.nodes.key_less(cur, tag, seq) || cur == s {
                let l = self.nodes.left[c];
                if l != NIL {
                    pw += self.nodes.sub_w[l as usize];
                    pwv += self.nodes.sub_wv[l as usize];
                }
                pw += self.nodes.weight[c];
                pwv += self.nodes.weight[c] * self.nodes.tag[c];
                cur = self.nodes.right[c];
            } else {
                cur = self.nodes.left[c];
            }
        }
        let total_w = self.nodes.sub_w[self.root as usize];
        let t = (pwv - self.vt * pw + (tag - self.vt) * (total_w - pw)) / self.rate;
        Some(t.max(0.0))
    }

    /// Extract the live set in admission order as `FluidQuery`s with their
    /// current remaining costs `(v − V)·w` — exactly the `running` input a
    /// fresh `predict` call would receive. Clears and fills `out`; no
    /// allocation beyond `out`'s own growth.
    pub fn extract_into(&self, out: &mut Vec<FluidQuery>) {
        out.clear();
        let mut cur = self.head;
        while cur != NIL {
            let i = cur as usize;
            out.push(FluidQuery {
                id: self.nodes.id[i],
                cost: ((self.nodes.tag[i] - self.vt) * self.nodes.weight[i]).max(0.0),
                weight: self.nodes.weight[i],
            });
            cur = self.nodes.seq_next[i];
        }
    }

    /// Full estimate set over the maintained live set plus an admission
    /// queue and predicted future arrivals: extracts the live set in
    /// admission order and runs the exact `predict` kernel, so the result
    /// is bit-identical to a fresh `predict` call on the same state. This
    /// is the cold path the delta updates exist to avoid; point queries
    /// ([`IncrementalFluid::estimate`]) serve the hot path.
    pub fn estimates_full(
        &mut self,
        queued: &[FluidQuery],
        slots: Option<usize>,
        future: Option<&FutureArrivals>,
    ) -> FluidPrediction {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.extract_into(&mut scratch);
        let p = predict(&scratch, queued, slots, future, self.rate);
        self.scratch = scratch;
        self.counters.full_rebuilds += 1;
        p
    }

    /// Force-rebuild the treap from the live set — the circuit-breaker's
    /// self-heal. The live queries are walked in admission order, their
    /// `(id, seq, tag, weight)` tuples captured, and the whole structure
    /// (tree, admission list, id index, free list) reconstructed from
    /// scratch. Sequence numbers and tags are preserved bit-for-bit, so a
    /// healthy model rebuilds to bit-identical state (the unique-treap
    /// property); a model poisoned by non-finite tags or weights is
    /// sanitized on the way through (non-finite weight → 1, non-finite tag
    /// → `V`, i.e. completes immediately). Returns the number of sanitized
    /// fields. Counted as a full rebuild in [`DeltaCounters`].
    pub fn rebuild(&mut self) -> usize {
        let mut items: Vec<(u64, u64, f64, f64)> = Vec::with_capacity(self.len());
        let mut cur = self.head;
        while cur != NIL {
            let i = cur as usize;
            items.push((
                self.nodes.id[i],
                self.nodes.seq[i],
                self.nodes.tag[i],
                self.nodes.weight[i],
            ));
            cur = self.nodes.seq_next[i];
        }
        self.root = NIL;
        self.head = NIL;
        self.tail = NIL;
        self.nodes = Nodes::with_capacity(items.len());
        self.by_id.clear();
        let mut sanitized = 0usize;
        for (id, seq, mut tag, mut weight) in items {
            if !weight.is_finite() || weight <= 0.0 {
                weight = 1.0;
                sanitized += 1;
            }
            if !tag.is_finite() {
                tag = self.vt;
                sanitized += 1;
            }
            let s = self.nodes.alloc(id, weight, tag, seq);
            self.by_id.insert(id, s);
            self.link_tail(s);
            self.insert_tree(s);
        }
        self.counters.full_rebuilds += 1;
        sanitized
    }

    /// Serialize the model. Nodes travel in admission order; the treap
    /// shape is not encoded because it is the unique treap over the node
    /// set (see module docs), so [`IncrementalFluid::decode`] rebuilds it
    /// exactly and a re-encode is byte-identical.
    pub fn encode(&self, e: &mut Enc) {
        e.put_f64(self.rate);
        e.put_f64(self.vt);
        e.put_u64(self.next_seq);
        e.put_usize(self.len());
        let mut cur = self.head;
        while cur != NIL {
            let i = cur as usize;
            e.put_u64(self.nodes.id[i]);
            e.put_u64(self.nodes.seq[i]);
            e.put_f64(self.nodes.tag[i]);
            e.put_f64(self.nodes.weight[i]);
            cur = self.nodes.seq_next[i];
        }
        e.put_usize(self.due.len());
        for &id in &self.due {
            e.put_u64(id);
        }
        let c = &self.counters;
        for v in [
            c.arrivals,
            c.finishes,
            c.aborts,
            c.reweights,
            c.cost_refinements,
            c.rate_changes,
            c.advances,
            c.completions,
            c.full_rebuilds,
        ] {
            e.put_u64(v);
        }
    }

    /// Rebuild a model from [`IncrementalFluid::encode`] bytes.
    pub fn decode(d: &mut Dec<'_>) -> Result<Self, CkptError> {
        let rate = d.get_f64()?;
        if rate.is_nan() || rate <= 0.0 {
            return Err(CkptError::Corrupt(format!(
                "non-positive rate {rate} in incremental-fluid state"
            )));
        }
        let vt = d.get_f64()?;
        let next_seq = d.get_u64()?;
        let n = d.get_usize()?;
        let mut f = IncrementalFluid::with_capacity(rate, n.min(1 << 20));
        f.vt = vt;
        for _ in 0..n {
            let id = d.get_u64()?;
            let seq = d.get_u64()?;
            let tag = d.get_f64()?;
            let weight = d.get_f64()?;
            if weight.is_nan() || weight <= 0.0 {
                return Err(CkptError::Corrupt(format!(
                    "non-positive weight {weight} for query {id} in incremental-fluid state"
                )));
            }
            if seq >= next_seq {
                return Err(CkptError::Corrupt(format!(
                    "sequence {seq} beyond cursor {next_seq} in incremental-fluid state"
                )));
            }
            let s = f.nodes.alloc(id, weight, tag, seq);
            if f.by_id.insert(id, s).is_some() {
                return Err(CkptError::Corrupt(format!(
                    "duplicate query {id} in incremental-fluid state"
                )));
            }
            f.link_tail(s);
            f.insert_tree(s);
        }
        f.next_seq = next_seq;
        let nd = d.get_usize()?;
        let mut due = Vec::with_capacity(nd.min(1 << 20));
        for _ in 0..nd {
            due.push(d.get_u64()?);
        }
        f.due = due;
        f.counters = DeltaCounters {
            arrivals: d.get_u64()?,
            finishes: d.get_u64()?,
            aborts: d.get_u64()?,
            reweights: d.get_u64()?,
            cost_refinements: d.get_u64()?,
            rate_changes: d.get_u64()?,
            advances: d.get_u64()?,
            completions: d.get_u64()?,
            full_rebuilds: d.get_u64()?,
        };
        Ok(f)
    }

    #[cfg(test)]
    fn check_invariants(&self) {
        fn walk(n: &Nodes, t: u32, count: &mut usize) -> (f64, f64, u32) {
            if t == NIL {
                return (0.0, 0.0, 0);
            }
            *count += 1;
            let i = t as usize;
            let (lw, lwv, ln) = walk(n, n.left[i], count);
            let (rw, rwv, rn) = walk(n, n.right[i], count);
            if n.left[i] != NIL {
                assert!(!n.key_less(t, n.tag[n.left[i] as usize], n.seq[n.left[i] as usize]));
                assert!(!n.prio_above(n.left[i], t));
            }
            if n.right[i] != NIL {
                assert!(n.key_less(t, n.tag[n.right[i] as usize], n.seq[n.right[i] as usize]));
                assert!(!n.prio_above(n.right[i], t));
            }
            let (w, wv, c) = (
                lw + n.weight[i] + rw,
                lwv + n.weight[i] * n.tag[i] + rwv,
                ln + 1 + rn,
            );
            assert_eq!(n.sub_w[i].to_bits(), w.to_bits(), "sub_w aggregate drift");
            assert_eq!(
                n.sub_wv[i].to_bits(),
                wv.to_bits(),
                "sub_wv aggregate drift"
            );
            assert_eq!(n.sub_n[i], c);
            (w, wv, c)
        }
        let mut count = 0usize;
        walk(&self.nodes, self.root, &mut count);
        assert_eq!(count, self.by_id.len());
        let mut list = 0usize;
        let mut cur = self.head;
        let mut last_seq = None;
        while cur != NIL {
            list += 1;
            let seq = self.nodes.seq[cur as usize];
            if let Some(p) = last_seq {
                assert!(seq > p, "admission list out of order");
            }
            last_seq = Some(seq);
            cur = self.nodes.seq_next[cur as usize];
        }
        assert_eq!(list, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::standard_remaining_times;

    fn q(id: u64, cost: f64, weight: f64) -> FluidQuery {
        FluidQuery { id, cost, weight }
    }

    #[test]
    fn point_estimates_match_closed_form() {
        let qs = [
            q(1, 100.0, 1.0),
            q(2, 200.0, 1.0),
            q(3, 300.0, 1.0),
            q(4, 400.0, 1.0),
        ];
        let mut f = IncrementalFluid::new(100.0);
        for query in &qs {
            f.arrive(query.id, query.cost, query.weight);
        }
        let closed = standard_remaining_times(&qs, 100.0);
        for (i, query) in qs.iter().enumerate() {
            let e = f.estimate(query.id).unwrap();
            assert!((e - closed[i]).abs() < 1e-9, "id {}: {e}", query.id);
        }
        f.check_invariants();
    }

    #[test]
    fn point_estimates_match_predict_after_advance() {
        let mut f = IncrementalFluid::new(50.0);
        f.arrive(1, 500.0, 2.0);
        f.arrive(2, 100.0, 1.0);
        f.arrive(3, 321.0, 0.5);
        f.advance(0.75);
        let p = f.estimates_full(&[], None, None);
        for id in [1u64, 2, 3] {
            let point = f.estimate(id).unwrap();
            let full = p.remaining_for(id).unwrap();
            assert!(
                (point - full).abs() < 1e-9 * full.max(1.0),
                "id {id}: point {point} vs full {full}"
            );
        }
    }

    #[test]
    fn estimates_full_is_bit_identical_to_fresh_predict() {
        let mut f = IncrementalFluid::new(80.0);
        f.arrive(10, 400.0, 1.0);
        f.arrive(11, 150.0, 2.0);
        f.advance(1.25);
        f.arrive(12, 90.0, 0.5);
        f.reweight(10, 3.0);
        let mut extracted = Vec::new();
        f.extract_into(&mut extracted);
        let fresh = predict(&extracted, &[], None, None, 80.0);
        let incr = f.estimates_full(&[], None, None);
        assert_eq!(fresh.finish_times.len(), incr.finish_times.len());
        for (a, b) in fresh.finish_times.iter().zip(incr.finish_times.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }

    #[test]
    fn advance_crosses_completions_in_order() {
        let mut f = IncrementalFluid::new(100.0);
        f.arrive(1, 100.0, 1.0);
        f.arrive(2, 200.0, 1.0);
        f.arrive(3, 300.0, 1.0);
        // Fig 1 shape: finishes at t = 3, 5, 6.
        f.advance(5.5);
        let mut done = Vec::new();
        f.drain_due(&mut done);
        assert_eq!(done, vec![1, 2]);
        assert_eq!(f.len(), 1);
        let rest = f.estimate(3).unwrap();
        assert!((rest - 0.5).abs() < 1e-9, "got {rest}");
        assert!(f.estimate(1).is_none());
        f.check_invariants();
    }

    #[test]
    fn rate_change_is_lazy_and_exact() {
        let mut f = IncrementalFluid::new(100.0);
        f.arrive(1, 300.0, 1.0);
        f.arrive(2, 100.0, 1.0);
        f.set_rate(50.0);
        // Same tags, half the rate: estimates double.
        assert!((f.estimate(2).unwrap() - 4.0).abs() < 1e-9);
        assert!((f.estimate(1).unwrap() - 8.0).abs() < 1e-9);
        assert_eq!(f.counters().rate_changes, 1);
    }

    #[test]
    fn reweight_preserves_remaining_cost() {
        let mut f = IncrementalFluid::new(100.0);
        f.arrive(1, 400.0, 1.0);
        f.arrive(2, 400.0, 1.0);
        f.advance(2.0); // each got 100 units; 300 left apiece
        assert!(f.reweight(1, 3.0));
        let c1 = f.remaining_cost(1).unwrap();
        assert!((c1 - 300.0).abs() < 1e-6, "got {c1}");
        // id 1 now takes 3/4 of the rate: finishes at 300/75 = 4s.
        let e1 = f.estimate(1).unwrap();
        assert!((e1 - 4.0).abs() < 1e-6, "got {e1}");
        f.check_invariants();
    }

    #[test]
    fn finish_abort_and_unknown_ids() {
        let mut f = IncrementalFluid::new(10.0);
        f.arrive(1, 10.0, 1.0);
        f.arrive(2, 10.0, 1.0);
        assert!(f.finish(1));
        assert!(!f.finish(1));
        assert!(f.abort(2));
        assert!(!f.abort(7));
        assert!(!f.reweight(1, 2.0));
        assert!(!f.refine_cost(1, 5.0));
        assert!(f.is_empty());
        assert_eq!(f.estimate(1), None);
        let c = f.counters();
        assert_eq!((c.finishes, c.aborts), (1, 1));
    }

    #[test]
    fn refine_cost_retags() {
        let mut f = IncrementalFluid::new(100.0);
        f.arrive(1, 100.0, 1.0);
        assert!(f.refine_cost(1, 400.0));
        assert!((f.estimate(1).unwrap() - 4.0).abs() < 1e-9);
        f.check_invariants();
    }

    #[test]
    fn checkpoint_round_trips_bit_identically() {
        let mut f = IncrementalFluid::new(64.0);
        for i in 0..100u64 {
            f.arrive(i, 50.0 + i as f64, 1.0 + (i % 4) as f64);
        }
        f.advance(0.37);
        f.reweight(17, 2.5);
        f.refine_cost(23, 999.0);
        assert!(f.finish(3));
        f.set_rate(128.0);
        f.advance(0.11);
        let mut e = Enc::new();
        f.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let mut g = IncrementalFluid::decode(&mut d).unwrap();
        assert!(d.is_exhausted());
        let mut e2 = Enc::new();
        g.encode(&mut e2);
        assert_eq!(bytes, e2.into_bytes(), "re-encode must be byte-identical");
        // Behavior equivalence: same estimates and same future evolution.
        assert_eq!(f.len(), g.len());
        for i in 0..100u64 {
            match (f.estimate(i), g.estimate(i)) {
                (Some(a), Some(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => assert_eq!(a, b),
            }
        }
        f.advance(5.0);
        g.advance(5.0);
        let (mut da, mut db) = (Vec::new(), Vec::new());
        f.drain_due(&mut da);
        g.drain_due(&mut db);
        assert_eq!(da, db);
        assert_eq!(f.virtual_time().to_bits(), g.virtual_time().to_bits());
        g.check_invariants();
    }

    #[test]
    fn rebuild_of_healthy_state_is_bit_identical() {
        let mut f = IncrementalFluid::new(64.0);
        for i in 0..200u64 {
            f.arrive(i, 25.0 + (i * 13 % 400) as f64, 1.0 + (i % 5) as f64);
        }
        f.advance(1.7);
        f.reweight(11, 4.0);
        f.refine_cost(42, 777.0);
        let mut e = Enc::new();
        f.encode(&mut e);
        let before = e.into_bytes();
        let before_estimates: Vec<_> = (0..200u64).map(|i| f.estimate(i)).collect();
        assert_eq!(f.rebuild(), 0, "healthy state needs no sanitization");
        let mut e2 = Enc::new();
        f.encode(&mut e2);
        // The encoding ends with the 9-counter telemetry block; rebuild
        // legitimately bumps `full_rebuilds` there, so model-state bytes
        // are everything before it.
        let after = e2.into_bytes();
        let state = before.len() - 9 * 8;
        assert_eq!(
            before[..state],
            after[..state],
            "rebuild must not move model state"
        );
        for (i, b) in before_estimates.iter().enumerate() {
            match (f.estimate(i as u64), b) {
                (Some(x), Some(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                (a, b) => assert_eq!(a, *b),
            }
        }
        f.check_invariants();
        assert_eq!(f.counters().full_rebuilds, 1);
    }

    #[test]
    fn rebuild_sanitizes_poisoned_state() {
        let mut f = IncrementalFluid::new(10.0);
        f.arrive(1, 100.0, 1.0);
        f.arrive(2, 100.0, 1.0);
        // Poison node 1 directly: non-finite tag and weight.
        let s = *f.by_id.get(&1).unwrap() as usize;
        f.nodes.tag[s] = f64::NAN;
        f.nodes.weight[s] = f64::INFINITY;
        let sanitized = f.rebuild();
        assert_eq!(sanitized, 2);
        assert!(f.estimate(1).unwrap().is_finite());
        assert!(f.estimate(2).unwrap().is_finite());
        f.check_invariants();
        // The poisoned query now completes immediately (tag = V).
        f.advance(1e-6);
        let mut done = Vec::new();
        f.drain_due(&mut done);
        assert_eq!(done, vec![1]);
    }

    #[test]
    fn decode_rejects_corrupt_state() {
        let mut e = Enc::new();
        IncrementalFluid::new(10.0).encode(&mut e);
        let mut bytes = e.into_bytes();
        bytes.truncate(bytes.len() - 1);
        let mut d = Dec::new(&bytes);
        assert!(IncrementalFluid::decode(&mut d).is_err());
    }

    #[test]
    fn idle_advance_freezes_virtual_time() {
        let mut f = IncrementalFluid::new(10.0);
        f.advance(100.0);
        assert_eq!(f.virtual_time(), 0.0);
        f.arrive(1, 10.0, 1.0);
        f.advance(100.0);
        let mut done = Vec::new();
        f.drain_due(&mut done);
        assert_eq!(done, vec![1]);
        let frozen = f.virtual_time();
        f.advance(100.0);
        assert_eq!(f.virtual_time(), frozen);
    }
}
