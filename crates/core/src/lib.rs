//! `mqpi-core` — the paper's contribution: single- and multi-query SQL
//! progress indicators.
//!
//! A progress indicator (PI) continuously estimates the remaining execution
//! time of each running query. The two estimator families reproduced here:
//!
//! * [`single::SingleQueryPi`] — the SIGMOD'04/ICDE'05 baseline: remaining
//!   time = refined remaining cost ÷ *currently observed* speed. It sees
//!   load only implicitly, so it mispredicts whenever the load is about to
//!   change (a concurrent query finishing, a queued query starting).
//! * [`multi::MultiQueryPi`] — the EDBT'06 estimator: it runs a
//!   generalized-processor-sharing *fluid model* ([`fluid`]) over the
//!   remaining costs and weights of **all** concurrent queries (§2.2), can
//!   extend its visibility with the admission queue (§2.3), and can inject
//!   predicted future arrivals from approximate workload statistics (§2.4).
//!
//! [`adaptive`] provides the arrival-rate re-estimation that lets a
//! multi-query PI correct bad information about the future (§5.2.3,
//! Figs. 8-10). [`ensemble`] generalizes both families behind one
//! [`ensemble::Estimator`] trait, adds three further estimator families,
//! and runs them as an [`ensemble::Ensemble`]: online selection scored
//! against realized finish times plus p10/p50/p90 uncertainty bands.

pub mod adaptive;
pub mod ensemble;
pub mod estimate;
pub mod fluid;
pub mod incremental;
pub mod multi;
pub mod observe;
pub mod percent;
pub mod sanitize;
pub mod single;
pub mod validator;

pub use adaptive::ArrivalRateEstimator;
pub use ensemble::{
    DriverNodePi, Ensemble, EnsembleConfig, EnsembleTick, Estimator, SelectorDecision, SpeedEwmaPi,
    TotalWorkPi,
};
pub use estimate::{relative_error, Band, BandedEstimate, Estimate, EstimateSet};
pub use fluid::{standard_remaining_times, FluidPrediction, FluidQuery, FutureArrivals};
pub use incremental::{DeltaCounters, IncrementalFluid};
pub use multi::{FutureWorkload, MultiQueryPi, Visibility};
pub use observe::{emit_observed, observe_estimates};
pub use percent::{PercentDonePi, TimeFractionPi};
pub use sanitize::{
    sanitize_fraction, sanitize_fraction_counted, sanitize_percent, sanitize_percent_counted,
    sanitize_seconds, sanitize_seconds_counted, MAX_REMAINING_SECONDS,
};
pub use single::SingleQueryPi;
pub use validator::{InvariantValidator, ValidationContext, Violation};
