//! Estimate types and error metrics.

/// A remaining-time estimate for one query.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Estimate {
    /// Query id the estimate is for.
    pub id: u64,
    /// Estimated remaining execution time in (virtual) seconds.
    pub remaining_seconds: f64,
}

/// The paper's relative-error metric (§5.2.3):
/// `|t_est − t_actual| / t_actual × 100%` — returned as a fraction
/// (0.25 = 25%).
pub fn relative_error(estimated: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        return if estimated == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (estimated - actual).abs() / actual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basic() {
        assert_eq!(relative_error(150.0, 100.0), 0.5);
        assert_eq!(relative_error(50.0, 100.0), 0.5);
        assert_eq!(relative_error(100.0, 100.0), 0.0);
    }

    #[test]
    fn relative_error_zero_actual() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }
}
