//! Estimate types and error metrics.

use std::collections::HashMap;

use crate::sanitize::sanitize_seconds;

/// A remaining-time estimate for one query.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Estimate {
    /// Query id the estimate is for.
    pub id: u64,
    /// Estimated remaining execution time in (virtual) seconds.
    pub remaining_seconds: f64,
}

/// One batch of per-query estimates from a single prediction pass, indexed
/// by query id. Driver loops fetch this once per tick and look queries up
/// in O(1), instead of re-running the predictor per query.
#[derive(Debug, Clone, Default)]
pub struct EstimateSet {
    by_id: HashMap<u64, f64>,
    truncated: bool,
    degraded: u32,
}

impl EstimateSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a set from raw estimator output. Every value passes through
    /// the sanitizer ([`crate::sanitize::sanitize_seconds`]): whatever the
    /// estimator math produced, callers only ever see finite, non-negative
    /// remaining times. [`EstimateSet::degraded`] counts the repairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, f64)>, truncated: bool) -> Self {
        let mut degraded = 0;
        let by_id = pairs
            .into_iter()
            .map(|(id, raw)| {
                let (t, was_degraded) = sanitize_seconds(raw);
                if was_degraded {
                    degraded += 1;
                }
                (id, t)
            })
            .collect();
        Self {
            by_id,
            truncated,
            degraded,
        }
    }

    /// How many estimates the sanitizer had to repair (NaN, ∞, negative,
    /// or absurdly large raw values).
    pub fn degraded(&self) -> u32 {
        self.degraded
    }

    /// Remaining-seconds estimate for `id`, if the estimator produced one.
    pub fn get(&self, id: u64) -> Option<f64> {
        self.by_id.get(&id).copied()
    }

    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// True when the underlying prediction hit its virtual-arrival cap
    /// (predicted overload): estimates are then lower bounds.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.by_id.iter().map(|(&id, &t)| (id, t))
    }

    /// Materialize as [`Estimate`] records (unspecified order).
    pub fn to_vec(&self) -> Vec<Estimate> {
        self.iter()
            .map(|(id, remaining_seconds)| Estimate {
                id,
                remaining_seconds,
            })
            .collect()
    }
}

/// Percentile band around a remaining-time estimate. The point estimate is
/// the band's p50; p10/p90 bound the plausible range given the chosen
/// estimator's recent residuals and the current rate uncertainty (Wu et
/// al., *Uncertainty Aware Query Execution Time Prediction*: estimates
/// should carry distributions, not points). Invariant: all three values
/// are finite, non-negative, and ordered `p10 ≤ p50 ≤ p90`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Band {
    /// Optimistic bound: 10 % of realized outcomes finish sooner.
    pub p10: f64,
    /// Median remaining-time estimate (the point estimate).
    pub p50: f64,
    /// Pessimistic bound: 90 % of realized outcomes finish sooner.
    pub p90: f64,
}

impl Band {
    /// Collapse to a zero-width band at `p` (no uncertainty information).
    pub fn point(p: f64) -> Self {
        Band {
            p10: p,
            p50: p,
            p90: p,
        }
    }

    /// Sanitize each percentile and restore ordering, whatever the raw
    /// inputs were. Callers only ever see finite, ordered bands.
    pub fn sanitized(p10: f64, p50: f64, p90: f64) -> Self {
        let p50 = sanitize_seconds(p50).0;
        let p10 = sanitize_seconds(p10).0.min(p50);
        let p90 = sanitize_seconds(p90).0.max(p50);
        Band { p10, p50, p90 }
    }

    /// Band width `p90 − p10` in seconds.
    pub fn width(&self) -> f64 {
        self.p90 - self.p10
    }

    /// Whether a realized remaining time fell inside the band.
    pub fn covers(&self, actual: f64) -> bool {
        self.p10 <= actual && actual <= self.p90
    }
}

/// A remaining-time estimate with uncertainty: one query's [`Band`] plus
/// the estimator the ensemble selector chose to produce it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BandedEstimate {
    /// Query id the estimate is for.
    pub id: u64,
    /// p10/p50/p90 remaining-time percentiles.
    pub band: Band,
    /// Name of the estimator that produced the point estimate.
    pub chosen: &'static str,
}

/// The paper's relative-error metric (§5.2.3):
/// `|t_est − t_actual| / t_actual × 100%` — returned as a fraction
/// (0.25 = 25%).
pub fn relative_error(estimated: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        return if estimated == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (estimated - actual).abs() / actual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basic() {
        assert_eq!(relative_error(150.0, 100.0), 0.5);
        assert_eq!(relative_error(50.0, 100.0), 0.5);
        assert_eq!(relative_error(100.0, 100.0), 0.0);
    }

    #[test]
    fn relative_error_zero_actual() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn from_pairs_sanitizes_and_counts_degradations() {
        let set = EstimateSet::from_pairs(
            [(1, 10.0), (2, f64::NAN), (3, -4.0), (4, f64::INFINITY)],
            false,
        );
        assert_eq!(set.degraded(), 3);
        assert_eq!(set.get(1), Some(10.0));
        assert_eq!(set.get(3), Some(0.0));
        for (_, t) in set.iter() {
            assert!(t.is_finite() && t >= 0.0);
        }
    }
}
