//! Estimate types and error metrics.

use std::collections::HashMap;

use crate::sanitize::sanitize_seconds;

/// A remaining-time estimate for one query.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Estimate {
    /// Query id the estimate is for.
    pub id: u64,
    /// Estimated remaining execution time in (virtual) seconds.
    pub remaining_seconds: f64,
}

/// One batch of per-query estimates from a single prediction pass, indexed
/// by query id. Driver loops fetch this once per tick and look queries up
/// in O(1), instead of re-running the predictor per query.
#[derive(Debug, Clone, Default)]
pub struct EstimateSet {
    by_id: HashMap<u64, f64>,
    truncated: bool,
    degraded: u32,
}

impl EstimateSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a set from raw estimator output. Every value passes through
    /// the sanitizer ([`crate::sanitize::sanitize_seconds`]): whatever the
    /// estimator math produced, callers only ever see finite, non-negative
    /// remaining times. [`EstimateSet::degraded`] counts the repairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, f64)>, truncated: bool) -> Self {
        let mut degraded = 0;
        let by_id = pairs
            .into_iter()
            .map(|(id, raw)| {
                let (t, was_degraded) = sanitize_seconds(raw);
                if was_degraded {
                    degraded += 1;
                }
                (id, t)
            })
            .collect();
        Self {
            by_id,
            truncated,
            degraded,
        }
    }

    /// How many estimates the sanitizer had to repair (NaN, ∞, negative,
    /// or absurdly large raw values).
    pub fn degraded(&self) -> u32 {
        self.degraded
    }

    /// Remaining-seconds estimate for `id`, if the estimator produced one.
    pub fn get(&self, id: u64) -> Option<f64> {
        self.by_id.get(&id).copied()
    }

    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// True when the underlying prediction hit its virtual-arrival cap
    /// (predicted overload): estimates are then lower bounds.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.by_id.iter().map(|(&id, &t)| (id, t))
    }

    /// Materialize as [`Estimate`] records (unspecified order).
    pub fn to_vec(&self) -> Vec<Estimate> {
        self.iter()
            .map(|(id, remaining_seconds)| Estimate {
                id,
                remaining_seconds,
            })
            .collect()
    }
}

/// The paper's relative-error metric (§5.2.3):
/// `|t_est − t_actual| / t_actual × 100%` — returned as a fraction
/// (0.25 = 25%).
pub fn relative_error(estimated: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        return if estimated == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (estimated - actual).abs() / actual
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basic() {
        assert_eq!(relative_error(150.0, 100.0), 0.5);
        assert_eq!(relative_error(50.0, 100.0), 0.5);
        assert_eq!(relative_error(100.0, 100.0), 0.0);
    }

    #[test]
    fn relative_error_zero_actual() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn from_pairs_sanitizes_and_counts_degradations() {
        let set = EstimateSet::from_pairs(
            [(1, 10.0), (2, f64::NAN), (3, -4.0), (4, f64::INFINITY)],
            false,
        );
        assert_eq!(set.degraded(), 3);
        assert_eq!(set.get(1), Some(10.0));
        assert_eq!(set.get(3), Some(0.0));
        for (_, t) in set.iter() {
            assert!(t.is_finite() && t >= 0.0);
        }
    }
}
