//! The multi-query progress indicator (the paper's contribution).
//!
//! Given a system snapshot, the estimator builds a fluid model over the
//! refined remaining costs and weights of all running queries and predicts
//! every query's completion. Its *visibility* is configurable, matching the
//! paper's three experimental configurations:
//!
//! * concurrent queries only (§2.2) — [`Visibility::concurrent_only`];
//! * plus the admission queue (§2.3) — [`Visibility::with_queue`];
//! * plus predicted future arrivals (§2.4) —
//!   [`Visibility::with_future`].

use mqpi_sim::system::SystemSnapshot;

use crate::estimate::EstimateSet;
use crate::fluid::{predict, FluidQuery, FutureArrivals};

/// Approximate knowledge about future load (paper §2.4): average arrival
/// rate λ, average cost c̄, average weight w̄.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FutureWorkload {
    /// Average arrival rate (queries per second).
    pub lambda: f64,
    /// Average query cost (work units).
    pub avg_cost: f64,
    /// Average query weight.
    pub avg_weight: f64,
}

/// What the estimator can see.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Visibility {
    /// Admission-slot limit of the system (needed to model when queued and
    /// future queries start). `None` = unlimited.
    pub admission_slots: Option<usize>,
    /// Model queries waiting in the admission queue.
    pub consider_queue: bool,
    /// Model predicted future arrivals.
    pub future: Option<FutureWorkload>,
}

impl Visibility {
    /// §2.2 configuration: concurrent queries only.
    pub fn concurrent_only() -> Self {
        Visibility::default()
    }

    /// §2.3 configuration: concurrent queries plus the admission queue.
    pub fn with_queue(admission_slots: Option<usize>) -> Self {
        Visibility {
            admission_slots,
            consider_queue: true,
            future: None,
        }
    }

    /// §2.4 configuration: everything, including predicted future arrivals.
    pub fn with_future(admission_slots: Option<usize>, future: FutureWorkload) -> Self {
        Visibility {
            admission_slots,
            consider_queue: true,
            future: Some(future),
        }
    }
}

/// Multi-query PI.
#[derive(Debug, Clone, Default)]
pub struct MultiQueryPi {
    /// Estimator visibility.
    pub visibility: Visibility,
}

impl MultiQueryPi {
    /// Estimator with the given visibility.
    pub fn new(visibility: Visibility) -> Self {
        MultiQueryPi { visibility }
    }

    /// Estimates for all running (unblocked) queries — and, when the queue
    /// is visible, for queued queries as well. One [`predict`] pass covers
    /// the whole snapshot; look individual queries up in the returned set.
    pub fn estimates(&self, snap: &SystemSnapshot) -> EstimateSet {
        // The fluid model requires a positive rate; a paused or corrupt
        // snapshot (rate 0, NaN) floors to an epsilon rate instead — the
        // resulting huge estimates are capped by the sanitizer, and the
        // estimator keeps its contract of never panicking on bad input.
        let rate = if snap.rate.is_finite() && snap.rate > 0.0 {
            snap.rate
        } else {
            1e-9
        };
        let running: Vec<FluidQuery> = snap
            .running
            .iter()
            .filter(|q| !q.blocked)
            .map(|q| FluidQuery {
                id: q.id,
                cost: q.remaining,
                weight: q.weight,
            })
            .collect();
        let queued: Vec<FluidQuery> = if self.visibility.consider_queue {
            snap.queued
                .iter()
                .map(|q| FluidQuery {
                    id: q.id,
                    cost: q.est_cost,
                    weight: q.weight,
                })
                .collect()
        } else {
            Vec::new()
        };
        let future = self.visibility.future.and_then(|f| {
            let mut fa = FutureArrivals::from_rate(f.lambda, f.avg_cost, f.avg_weight)?;
            // Bound the forecasting horizon: predicting arrivals much beyond
            // a few multiples of the current backlog's drain time is pure
            // speculation, and in an overloaded system it would inflate
            // estimates without bound. Cap virtual arrivals at three times
            // the no-arrival quiescent time's worth of stream.
            let backlog: f64 = running.iter().map(|q| q.cost).sum::<f64>()
                + queued.iter().map(|q| q.cost).sum::<f64>();
            let quiescent = backlog / rate;
            let cap = (3.0 * quiescent * f.lambda).ceil().max(1.0) as usize;
            fa.max_arrivals = cap.min(fa.max_arrivals);
            Some(fa)
        });
        let slots = if self.visibility.consider_queue || future.is_some() {
            self.visibility.admission_slots
        } else {
            // Without queue awareness the PI doesn't model admission at all.
            None
        };
        let p = predict(&running, &queued, slots, future.as_ref(), rate);
        EstimateSet::from_pairs(p.finish_times, p.truncated)
    }

    /// Estimate for one query. Convenience wrapper over [`Self::estimates`];
    /// when estimating several queries per tick, call `estimates` once and
    /// use [`EstimateSet::get`] instead.
    pub fn estimate(&self, snap: &SystemSnapshot, id: u64) -> Option<f64> {
        self.estimates(snap).get(id)
    }

    /// Like [`Self::estimates`], additionally recording the pass through
    /// `obs`: one `estimate` trace event per query (stamped with the
    /// snapshot time, sorted by id), the `core.predict.multi` profiling
    /// span, and estimate/sanitizer counters. With a disabled handle this
    /// is exactly [`Self::estimates`].
    pub fn estimates_observed(&self, snap: &SystemSnapshot, obs: &mqpi_obs::Obs) -> EstimateSet {
        crate::observe::emit_observed(
            obs,
            "multi",
            "core.predict.multi",
            snap.time,
            self.estimates(snap),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqpi_sim::system::{QueryState, QueuedState, SystemSnapshot};

    fn state(id: u64, remaining: f64, weight: f64) -> QueryState {
        QueryState {
            id,
            name: format!("q{id}").into(),
            weight,
            arrived: 0.0,
            started: 0.0,
            done: 0.0,
            remaining,
            initial_estimate: remaining,
            observed_speed: Some(1.0),
            blocked: false,
            rolling_back: false,
        }
    }

    fn snap(running: Vec<QueryState>, queued: Vec<QueuedState>) -> SystemSnapshot {
        SystemSnapshot {
            time: 0.0,
            rate: 100.0,
            running,
            queued,
        }
    }

    #[test]
    fn standard_case_predicts_load_drop() {
        // Q1 big, Q2 tiny: multi PI knows Q1 speeds up when Q2 finishes.
        let s = snap(vec![state(1, 500.0, 1.0), state(2, 10.0, 1.0)], vec![]);
        let pi = MultiQueryPi::new(Visibility::concurrent_only());
        let t1 = pi.estimate(&s, 1).unwrap();
        // Q2 done at 0.2s; Q1: 0.2 + (500−10)/100 = 5.1.
        assert!((t1 - 5.1).abs() < 1e-6, "t1 = {t1}");
    }

    #[test]
    fn queue_visibility_accounts_for_waiting_queries() {
        let s = snap(
            vec![state(1, 500.0, 1.0), state(2, 100.0, 1.0)],
            vec![QueuedState {
                id: 3,
                name: "q3".into(),
                weight: 1.0,
                arrived: 0.0,
                est_cost: 200.0,
            }],
        );
        let blind = MultiQueryPi::new(Visibility::concurrent_only());
        let aware = MultiQueryPi::new(Visibility::with_queue(Some(2)));
        // Blind: Q2 at 2s, Q1 at 2+4=6s. Aware: Q3 takes over ⇒ Q1 at 8s.
        assert!((blind.estimate(&s, 1).unwrap() - 6.0).abs() < 1e-6);
        assert!((aware.estimate(&s, 1).unwrap() - 8.0).abs() < 1e-6);
        // Aware also estimates the queued query itself.
        assert!((aware.estimate(&s, 3).unwrap() - 6.0).abs() < 1e-6);
        assert!(blind.estimate(&s, 3).is_none());
    }

    #[test]
    fn future_visibility_inflates_estimates() {
        let s = snap(vec![state(1, 1000.0, 1.0)], vec![]);
        let base = MultiQueryPi::new(Visibility::concurrent_only());
        let fut = MultiQueryPi::new(Visibility::with_future(
            None,
            FutureWorkload {
                lambda: 0.5,
                avg_cost: 150.0,
                avg_weight: 1.0,
            },
        ));
        assert!(fut.estimate(&s, 1).unwrap() > base.estimate(&s, 1).unwrap());
    }

    #[test]
    fn blocked_queries_are_excluded() {
        let mut blocked = state(2, 400.0, 1.0);
        blocked.blocked = true;
        let s = snap(vec![state(1, 100.0, 1.0), blocked], vec![]);
        let pi = MultiQueryPi::new(Visibility::concurrent_only());
        // Q1 effectively runs alone.
        assert!((pi.estimate(&s, 1).unwrap() - 1.0).abs() < 1e-6);
        assert!(pi.estimate(&s, 2).is_none());
    }
}
