//! Wire codecs for the simulator's checkpointable value types.
//!
//! [`System::checkpoint`](crate::System::checkpoint) serializes the whole
//! simulated world; the per-type encoders here cover the public value types
//! (policies, fault plans, finished records), while the session/heap layout
//! — which touches private scheduler fields — lives next to the `System`
//! struct. Encodings are canonical: equal values produce equal bytes, maps
//! are written in sorted key order, and every float travels as its IEEE-754
//! bit pattern. Enum variants are tagged with one byte; unknown tags decode
//! to [`CkptError::Corrupt`], never a panic.

use mqpi_ckpt::{CkptError, Dec, Enc};

use crate::admission::AdmissionPolicy;
use crate::faults::{FaultEvent, FaultKind, FaultPlan, RetryPolicy};
use crate::job::JobSnapshot;
use crate::speed::SpeedMonitor;
use crate::system::{
    ErrorPolicy, FaultStats, FinishKind, FinishedQuery, InjectedFault, RateModel, SimEvent,
    StepMode,
};

type Result<T> = std::result::Result<T, CkptError>;

fn bad_tag(what: &str, tag: u8) -> CkptError {
    CkptError::Corrupt(format!("unknown {what} tag {tag}"))
}

pub(crate) fn encode_rate_model(e: &mut Enc, m: RateModel) {
    match m {
        RateModel::Constant => e.put_u8(0),
        RateModel::Contention { alpha } => {
            e.put_u8(1);
            e.put_f64(alpha);
        }
    }
}

pub(crate) fn decode_rate_model(d: &mut Dec<'_>) -> Result<RateModel> {
    match d.get_u8()? {
        0 => Ok(RateModel::Constant),
        1 => Ok(RateModel::Contention {
            alpha: d.get_f64()?,
        }),
        t => Err(bad_tag("rate model", t)),
    }
}

pub(crate) fn encode_step_mode(e: &mut Enc, m: StepMode) {
    e.put_u8(match m {
        StepMode::Quantum => 0,
        StepMode::EventDriven => 1,
    });
}

pub(crate) fn decode_step_mode(d: &mut Dec<'_>) -> Result<StepMode> {
    match d.get_u8()? {
        0 => Ok(StepMode::Quantum),
        1 => Ok(StepMode::EventDriven),
        t => Err(bad_tag("step mode", t)),
    }
}

pub(crate) fn encode_admission(e: &mut Enc, p: AdmissionPolicy) {
    match p {
        AdmissionPolicy::Unlimited => e.put_u8(0),
        AdmissionPolicy::MaxConcurrent(k) => {
            e.put_u8(1);
            e.put_usize(k);
        }
        AdmissionPolicy::Bounded { slots, queue } => {
            e.put_u8(2);
            e.put_usize(slots);
            e.put_usize(queue);
        }
    }
}

pub(crate) fn decode_admission(d: &mut Dec<'_>) -> Result<AdmissionPolicy> {
    match d.get_u8()? {
        0 => Ok(AdmissionPolicy::Unlimited),
        1 => Ok(AdmissionPolicy::MaxConcurrent(d.get_usize()?)),
        2 => Ok(AdmissionPolicy::Bounded {
            slots: d.get_usize()?,
            queue: d.get_usize()?,
        }),
        t => Err(bad_tag("admission policy", t)),
    }
}

pub(crate) fn encode_error_policy(e: &mut Enc, p: ErrorPolicy) {
    e.put_u8(match p {
        ErrorPolicy::Propagate => 0,
        ErrorPolicy::Isolate => 1,
    });
}

pub(crate) fn decode_error_policy(d: &mut Dec<'_>) -> Result<ErrorPolicy> {
    match d.get_u8()? {
        0 => Ok(ErrorPolicy::Propagate),
        1 => Ok(ErrorPolicy::Isolate),
        t => Err(bad_tag("error policy", t)),
    }
}

pub(crate) fn encode_finish_kind(e: &mut Enc, k: FinishKind) {
    e.put_u8(match k {
        FinishKind::Completed => 0,
        FinishKind::Aborted => 1,
        FinishKind::Failed => 2,
        FinishKind::Rejected => 3,
    });
}

pub(crate) fn decode_finish_kind(d: &mut Dec<'_>) -> Result<FinishKind> {
    match d.get_u8()? {
        0 => Ok(FinishKind::Completed),
        1 => Ok(FinishKind::Aborted),
        2 => Ok(FinishKind::Failed),
        3 => Ok(FinishKind::Rejected),
        t => Err(bad_tag("finish kind", t)),
    }
}

pub(crate) fn encode_fault_kind(e: &mut Enc, k: FaultKind) {
    match k {
        FaultKind::CostNoise { factor } => {
            e.put_u8(0);
            e.put_f64(factor);
        }
        FaultKind::RateDip { factor, duration } => {
            e.put_u8(1);
            e.put_f64(factor);
            e.put_f64(duration);
        }
        FaultKind::AbortRetry { overhead } => {
            e.put_u8(2);
            e.put_u64(overhead);
        }
        FaultKind::Burst { queries, cost } => {
            e.put_u8(3);
            e.put_u32(queries);
            e.put_u64(cost);
        }
        FaultKind::PageFault => e.put_u8(4),
    }
}

pub(crate) fn decode_fault_kind(d: &mut Dec<'_>) -> Result<FaultKind> {
    match d.get_u8()? {
        0 => Ok(FaultKind::CostNoise {
            factor: d.get_f64()?,
        }),
        1 => Ok(FaultKind::RateDip {
            factor: d.get_f64()?,
            duration: d.get_f64()?,
        }),
        2 => Ok(FaultKind::AbortRetry {
            overhead: d.get_u64()?,
        }),
        3 => Ok(FaultKind::Burst {
            queries: d.get_u32()?,
            cost: d.get_u64()?,
        }),
        4 => Ok(FaultKind::PageFault),
        t => Err(bad_tag("fault kind", t)),
    }
}

pub(crate) fn encode_fault_plan(e: &mut Enc, p: &FaultPlan) {
    e.put_usize(p.events().len());
    for ev in p.events() {
        e.put_f64(ev.at);
        encode_fault_kind(e, ev.kind);
    }
    e.put_u64(p.seed);
    e.put_f64(p.retry.base_delay);
    e.put_f64(p.retry.multiplier);
    e.put_f64(p.retry.max_delay);
    e.put_u32(p.retry.max_attempts);
}

pub(crate) fn decode_fault_plan(d: &mut Dec<'_>) -> Result<FaultPlan> {
    let n = d.get_usize()?;
    let mut events = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let at = d.get_f64()?;
        let kind = decode_fault_kind(d)?;
        events.push(FaultEvent { at, kind });
    }
    let seed = d.get_u64()?;
    let retry = RetryPolicy {
        base_delay: d.get_f64()?,
        multiplier: d.get_f64()?,
        max_delay: d.get_f64()?,
        max_attempts: d.get_u32()?,
    };
    // `FaultPlan::new` re-sorts; the events were written already sorted, and
    // the sort is stable, so the order is preserved exactly.
    Ok(FaultPlan::new(events, seed, retry))
}

pub(crate) fn encode_sim_event(e: &mut Enc, ev: &SimEvent) {
    match *ev {
        SimEvent::Admitted {
            at,
            id,
            cost,
            weight,
        } => {
            e.put_u8(0);
            e.put_f64(at);
            e.put_u64(id);
            e.put_f64(cost);
            e.put_f64(weight);
        }
        SimEvent::Enqueued {
            at,
            id,
            cost,
            weight,
        } => {
            e.put_u8(1);
            e.put_f64(at);
            e.put_u64(id);
            e.put_f64(cost);
            e.put_f64(weight);
        }
        SimEvent::Departed { at, id, kind } => {
            e.put_u8(2);
            e.put_f64(at);
            e.put_u64(id);
            encode_finish_kind(e, kind);
        }
        SimEvent::Blocked { at, id } => {
            e.put_u8(3);
            e.put_f64(at);
            e.put_u64(id);
        }
        SimEvent::Resumed { at, id } => {
            e.put_u8(4);
            e.put_f64(at);
            e.put_u64(id);
        }
        SimEvent::CostRefined { at, id, remaining } => {
            e.put_u8(5);
            e.put_f64(at);
            e.put_u64(id);
            e.put_f64(remaining);
        }
        SimEvent::RateChanged { at, rate } => {
            e.put_u8(6);
            e.put_f64(at);
            e.put_f64(rate);
        }
    }
}

pub(crate) fn decode_sim_event(d: &mut Dec<'_>) -> Result<SimEvent> {
    match d.get_u8()? {
        0 => Ok(SimEvent::Admitted {
            at: d.get_f64()?,
            id: d.get_u64()?,
            cost: d.get_f64()?,
            weight: d.get_f64()?,
        }),
        1 => Ok(SimEvent::Enqueued {
            at: d.get_f64()?,
            id: d.get_u64()?,
            cost: d.get_f64()?,
            weight: d.get_f64()?,
        }),
        2 => Ok(SimEvent::Departed {
            at: d.get_f64()?,
            id: d.get_u64()?,
            kind: decode_finish_kind(d)?,
        }),
        3 => Ok(SimEvent::Blocked {
            at: d.get_f64()?,
            id: d.get_u64()?,
        }),
        4 => Ok(SimEvent::Resumed {
            at: d.get_f64()?,
            id: d.get_u64()?,
        }),
        5 => Ok(SimEvent::CostRefined {
            at: d.get_f64()?,
            id: d.get_u64()?,
            remaining: d.get_f64()?,
        }),
        6 => Ok(SimEvent::RateChanged {
            at: d.get_f64()?,
            rate: d.get_f64()?,
        }),
        t => Err(bad_tag("sim event", t)),
    }
}

pub(crate) fn encode_injected_fault(e: &mut Enc, f: &InjectedFault) {
    e.put_f64(f.at);
    encode_fault_kind(e, f.kind);
    e.put_opt_u64(f.victim);
}

pub(crate) fn decode_injected_fault(d: &mut Dec<'_>) -> Result<InjectedFault> {
    Ok(InjectedFault {
        at: d.get_f64()?,
        kind: decode_fault_kind(d)?,
        victim: d.get_opt_u64()?,
    })
}

pub(crate) fn encode_fault_stats(e: &mut Enc, s: &FaultStats) {
    for v in [
        s.injected,
        s.cost_noise,
        s.rate_dips,
        s.aborts,
        s.bursts,
        s.page_faults,
        s.retries_scheduled,
        s.retries_exhausted,
        s.failures,
        s.rejected,
        s.skipped,
    ] {
        e.put_u64(v);
    }
}

pub(crate) fn decode_fault_stats(d: &mut Dec<'_>) -> Result<FaultStats> {
    Ok(FaultStats {
        injected: d.get_u64()?,
        cost_noise: d.get_u64()?,
        rate_dips: d.get_u64()?,
        aborts: d.get_u64()?,
        bursts: d.get_u64()?,
        page_faults: d.get_u64()?,
        retries_scheduled: d.get_u64()?,
        retries_exhausted: d.get_u64()?,
        failures: d.get_u64()?,
        rejected: d.get_u64()?,
        skipped: d.get_u64()?,
    })
}

pub(crate) fn encode_job_snapshot(e: &mut Enc, s: &JobSnapshot) {
    e.put_u64(s.total);
    e.put_u64(s.done);
    e.put_f64(s.claimed_estimate);
    e.put_f64(s.report_scale);
    e.put_bool(s.fail_armed);
}

pub(crate) fn decode_job_snapshot(d: &mut Dec<'_>) -> Result<JobSnapshot> {
    Ok(JobSnapshot {
        total: d.get_u64()?,
        done: d.get_u64()?,
        claimed_estimate: d.get_f64()?,
        report_scale: d.get_f64()?,
        fail_armed: d.get_bool()?,
    })
}

pub(crate) fn encode_speed_monitor(e: &mut Enc, m: &SpeedMonitor) {
    let (tau, last_t, last_units, ema) = m.to_parts();
    e.put_f64(tau);
    e.put_f64(last_t);
    e.put_f64(last_units);
    e.put_opt_f64(ema);
}

pub(crate) fn decode_speed_monitor(d: &mut Dec<'_>) -> Result<SpeedMonitor> {
    let tau = d.get_f64()?;
    let last_t = d.get_f64()?;
    let last_units = d.get_f64()?;
    let ema = d.get_opt_f64()?;
    SpeedMonitor::from_parts(tau, last_t, last_units, ema)
        .map_err(|e| CkptError::Corrupt(format!("invalid speed monitor in checkpoint: {e}")))
}

pub(crate) fn encode_finished(e: &mut Enc, f: &FinishedQuery) {
    e.put_u64(f.id);
    e.put_str(&f.name);
    e.put_f64(f.weight);
    e.put_f64(f.arrived);
    e.put_opt_f64(f.started);
    e.put_f64(f.finished);
    encode_finish_kind(e, f.kind);
    e.put_f64(f.units_done);
    e.put_f64(f.remaining_at_end);
    e.put_f64(f.rollback_units);
}

pub(crate) fn decode_finished(d: &mut Dec<'_>) -> Result<FinishedQuery> {
    Ok(FinishedQuery {
        id: d.get_u64()?,
        name: d.get_str()?.into(),
        weight: d.get_f64()?,
        arrived: d.get_f64()?,
        started: d.get_opt_f64()?,
        finished: d.get_f64()?,
        kind: decode_finish_kind(d)?,
        units_done: d.get_f64()?,
        remaining_at_end: d.get_f64()?,
        rollback_units: d.get_f64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enum_codecs_round_trip() {
        let kinds = [
            FaultKind::CostNoise { factor: 1.5 },
            FaultKind::RateDip {
                factor: 0.3,
                duration: 4.0,
            },
            FaultKind::AbortRetry { overhead: 50 },
            FaultKind::Burst {
                queries: 3,
                cost: 200,
            },
            FaultKind::PageFault,
        ];
        for k in kinds {
            let mut e = Enc::new();
            encode_fault_kind(&mut e, k);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(decode_fault_kind(&mut d).unwrap(), k);
        }
        let policies = [
            AdmissionPolicy::Unlimited,
            AdmissionPolicy::MaxConcurrent(3),
            AdmissionPolicy::Bounded { slots: 2, queue: 5 },
        ];
        for p in policies {
            let mut e = Enc::new();
            encode_admission(&mut e, p);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(decode_admission(&mut d).unwrap(), p);
        }
    }

    #[test]
    fn unknown_tags_are_corrupt_not_panic() {
        let mut d = Dec::new(&[9u8]);
        assert!(matches!(
            decode_fault_kind(&mut d),
            Err(CkptError::Corrupt(_))
        ));
        let mut d = Dec::new(&[7u8]);
        assert!(matches!(
            decode_admission(&mut d),
            Err(CkptError::Corrupt(_))
        ));
        let mut d = Dec::new(&[2u8]);
        assert!(matches!(
            decode_error_policy(&mut d),
            Err(CkptError::Corrupt(_))
        ));
    }

    #[test]
    fn fault_plan_round_trips_in_order() {
        let plan = FaultPlan::generate(42, 100.0, &crate::faults::FaultMix::even(3));
        let mut e = Enc::new();
        encode_fault_plan(&mut e, &plan);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = decode_fault_plan(&mut d).unwrap();
        assert_eq!(back.events(), plan.events());
        assert_eq!(back.seed, plan.seed);
        assert_eq!(back.retry, plan.retry);
    }
}
