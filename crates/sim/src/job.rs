//! The unit of schedulable work.
//!
//! A [`Job`] can execute in work-unit installments and report progress. The
//! two implementations are [`CursorJob`] (a real engine cursor — the normal
//! case) and [`SyntheticJob`] (an exact-cost job used for scheduler tests
//! and for validating PI algorithms against known ground truth).

use mqpi_engine::error::Result;
use mqpi_engine::Cursor;

/// Progress report in the vocabulary the PIs need.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobProgress {
    /// Work units consumed so far.
    pub done: f64,
    /// Current (refined) estimate of the remaining cost `c`.
    pub remaining: f64,
    /// The estimate available before execution started (optimizer cost).
    pub initial_estimate: f64,
    /// Whether the job has completed.
    pub finished: bool,
}

/// Something the scheduler can run in installments.
///
/// `Send` so a whole simulated [`System`](crate::system::System) — jobs
/// included — can move into a worker thread of the parallel experiment
/// harness.
pub trait Job: Send {
    /// Run for roughly `budget` units; returns units actually used.
    fn run(&mut self, budget: u64) -> Result<u64>;
    /// Whether the job has completed.
    fn finished(&self) -> bool;
    /// Progress report.
    fn progress(&self) -> JobProgress;
    /// The *true* remaining work in units, when the job knows it exactly.
    /// This is ground truth for the scheduler's event-driven fast path —
    /// deliberately distinct from [`Job::progress`]'s `remaining`, which is
    /// an estimate and may be scaled to model optimizer error. Jobs that
    /// can't promise exactness (engine cursors) return `None`, which keeps
    /// them on the quantum path.
    fn exact_remaining(&self) -> Option<f64> {
        None
    }

    /// Arm an engine-level fault: the next [`Job::run`] call must return an
    /// error instead of doing work (how the fault injector models a failed
    /// page read). Returns `false` when the job cannot honor the request,
    /// in which case the injector counts the event as skipped.
    fn inject_failure(&mut self) -> bool {
        false
    }

    /// A pristine copy of this job for retry resubmission after an abort
    /// or failure — same query, no progress, no armed faults. `None` when
    /// re-execution isn't supported (engine cursors hold live operator
    /// state and must be re-opened from their `Prepared` plan instead).
    fn restart(&self) -> Option<Box<dyn Job>> {
        None
    }

    /// The job's complete state as serializable counters, for
    /// checkpointing. `None` when the job holds live, non-serializable
    /// state (engine cursors): a system containing such a job cannot be
    /// snapshotted, which [`System::checkpoint`](crate::System::checkpoint)
    /// reports as an `Unsupported` error rather than guessing.
    fn snapshot_state(&self) -> Option<JobSnapshot> {
        None
    }

    /// Opt-in hook for the scheduler's monomorphic fast path. A job that
    /// *is* a [`SyntheticJob`] returns itself here, and the scheduler then
    /// stores it inline (no box, static dispatch) for the rest of its life.
    /// Everything else stays behind the trait object and takes the cold
    /// path; the default keeps third-party jobs conservative.
    fn as_synthetic(&self) -> Option<&SyntheticJob> {
        None
    }
}

/// How the scheduler actually holds a job: common job kinds run through a
/// monomorphic enum arm (inline state, static dispatch, no pointer chase),
/// and the [`Job`] trait is reduced to the cold-path escape hatch for
/// engine cursors and custom jobs.
pub(crate) enum JobState {
    /// Fast path: the job state lives inline in the slab column.
    Synthetic(SyntheticJob),
    /// Cold path: anything else, behind the original trait object.
    Dyn(Box<dyn Job>),
}

impl std::fmt::Debug for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobState::Synthetic(j) => f.debug_tuple("Synthetic").field(j).finish(),
            JobState::Dyn(_) => f.write_str("Dyn(..)"),
        }
    }
}

impl JobState {
    /// Adopt a caller-supplied boxed job, unwrapping synthetic jobs onto
    /// the fast path via [`Job::as_synthetic`].
    pub(crate) fn from_box(job: Box<dyn Job>) -> Self {
        match job.as_synthetic() {
            Some(s) => JobState::Synthetic(s.clone()),
            None => JobState::Dyn(job),
        }
    }

    /// Placeholder stored in freed slab rows (drops any boxed job now).
    pub(crate) fn vacant() -> Self {
        JobState::Synthetic(SyntheticJob::new(0))
    }

    #[inline]
    pub(crate) fn run(&mut self, budget: u64) -> Result<u64> {
        match self {
            JobState::Synthetic(j) => j.run(budget),
            JobState::Dyn(j) => j.run(budget),
        }
    }

    #[inline]
    pub(crate) fn finished(&self) -> bool {
        match self {
            JobState::Synthetic(j) => Job::finished(j),
            JobState::Dyn(j) => j.finished(),
        }
    }

    #[inline]
    pub(crate) fn progress(&self) -> JobProgress {
        match self {
            JobState::Synthetic(j) => Job::progress(j),
            JobState::Dyn(j) => j.progress(),
        }
    }

    #[inline]
    pub(crate) fn exact_remaining(&self) -> Option<f64> {
        match self {
            JobState::Synthetic(j) => Job::exact_remaining(j),
            JobState::Dyn(j) => j.exact_remaining(),
        }
    }

    pub(crate) fn inject_failure(&mut self) -> bool {
        match self {
            JobState::Synthetic(j) => Job::inject_failure(j),
            JobState::Dyn(j) => j.inject_failure(),
        }
    }

    /// Pristine restart copy, staying on the fast path when possible.
    pub(crate) fn restart(&self) -> Option<JobState> {
        match self {
            JobState::Synthetic(j) => {
                let boxed = Job::restart(j)?;
                Some(JobState::from_box(boxed))
            }
            JobState::Dyn(j) => j.restart().map(JobState::from_box),
        }
    }

    pub(crate) fn snapshot_state(&self) -> Option<JobSnapshot> {
        match self {
            JobState::Synthetic(j) => Job::snapshot_state(j),
            JobState::Dyn(j) => j.snapshot_state(),
        }
    }
}

/// Serializable state of a [`SyntheticJob`], captured by
/// [`Job::snapshot_state`] and revived by [`SyntheticJob::from_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSnapshot {
    /// True total cost in units.
    pub total: u64,
    /// Units completed so far.
    pub done: u64,
    /// The claimed initial estimate.
    pub claimed_estimate: f64,
    /// Reported-remaining multiplier.
    pub report_scale: f64,
    /// Whether a failure is armed for the next run call.
    pub fail_armed: bool,
}

/// A real engine cursor as a job.
pub struct CursorJob {
    cursor: Cursor,
}

impl CursorJob {
    /// Wrap a cursor.
    pub fn new(cursor: Cursor) -> Self {
        CursorJob { cursor }
    }

    /// Access the underlying cursor (e.g. to read result rows at the end).
    pub fn cursor(&self) -> &Cursor {
        &self.cursor
    }
}

impl Job for CursorJob {
    fn run(&mut self, budget: u64) -> Result<u64> {
        Ok(self.cursor.run(budget)?.used)
    }

    fn finished(&self) -> bool {
        self.cursor.finished()
    }

    fn progress(&self) -> JobProgress {
        let p = self.cursor.progress();
        JobProgress {
            done: p.done,
            remaining: p.remaining,
            initial_estimate: p.initial_estimate,
            finished: p.finished,
        }
    }

    fn inject_failure(&mut self) -> bool {
        // Engine-level hook: the cursor's next installment surfaces a
        // storage error from inside the executor, not a panic.
        self.cursor.arm_page_fault();
        true
    }
}

/// A job with exactly known total cost. By default its progress reports
/// are exact, which makes Assumption 2 (perfect knowledge of remaining
/// costs) *true* — useful for unit tests and for the paper's analytical
/// examples (Figs. 1-2). [`SyntheticJob::with_report_scale`] deliberately
/// mis-reports the remaining cost, which is how the Assumption 2 ablation
/// injects controlled estimate error.
#[derive(Debug, Clone)]
pub struct SyntheticJob {
    total: u64,
    done: u64,
    /// What the job *claims* as its initial estimate (can be set ≠ total to
    /// model bad optimizer estimates).
    claimed_estimate: f64,
    /// Multiplier applied to the *reported* remaining cost (1.0 = exact).
    report_scale: f64,
    /// When set, the next `run` call fails with a storage error (armed by
    /// [`Job::inject_failure`]).
    fail_armed: bool,
}

impl SyntheticJob {
    /// Job of exactly `total` units.
    pub fn new(total: u64) -> Self {
        SyntheticJob {
            total,
            done: 0,
            claimed_estimate: total as f64,
            report_scale: 1.0,
            fail_armed: false,
        }
    }

    /// Job whose progress reports a (possibly wrong) initial estimate while
    /// the true cost is `total`.
    pub fn with_claimed_estimate(total: u64, claimed: f64) -> Self {
        SyntheticJob {
            claimed_estimate: claimed,
            ..SyntheticJob::new(total)
        }
    }

    /// Job whose *reported remaining cost* is `scale ×` the truth —
    /// Assumption 2 violated by a controlled factor.
    pub fn with_report_scale(total: u64, scale: f64) -> Self {
        assert!(scale > 0.0);
        SyntheticJob {
            claimed_estimate: total as f64 * scale,
            report_scale: scale,
            ..SyntheticJob::new(total)
        }
    }

    /// True total cost.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Revive a job from a [`JobSnapshot`], bit-identical to the job that
    /// produced it.
    pub fn from_snapshot(s: JobSnapshot) -> Self {
        SyntheticJob {
            total: s.total,
            done: s.done,
            claimed_estimate: s.claimed_estimate,
            report_scale: s.report_scale,
            fail_armed: s.fail_armed,
        }
    }
}

impl Job for SyntheticJob {
    fn run(&mut self, budget: u64) -> Result<u64> {
        if self.fail_armed {
            self.fail_armed = false;
            return Err(mqpi_engine::error::EngineError::storage(
                "injected page-read fault",
            ));
        }
        let used = budget.min(self.total - self.done);
        self.done += used;
        Ok(used)
    }

    fn finished(&self) -> bool {
        self.done >= self.total
    }

    fn progress(&self) -> JobProgress {
        JobProgress {
            done: self.done as f64,
            remaining: (self.total - self.done) as f64 * self.report_scale,
            initial_estimate: self.claimed_estimate,
            finished: self.finished(),
        }
    }

    fn exact_remaining(&self) -> Option<f64> {
        // Unscaled truth: report_scale only distorts what the PI sees.
        Some((self.total - self.done) as f64)
    }

    fn inject_failure(&mut self) -> bool {
        self.fail_armed = true;
        true
    }

    fn restart(&self) -> Option<Box<dyn Job>> {
        Some(Box::new(SyntheticJob {
            claimed_estimate: self.claimed_estimate,
            report_scale: self.report_scale,
            ..SyntheticJob::new(self.total)
        }))
    }

    fn snapshot_state(&self) -> Option<JobSnapshot> {
        Some(JobSnapshot {
            total: self.total,
            done: self.done,
            claimed_estimate: self.claimed_estimate,
            report_scale: self.report_scale,
            fail_armed: self.fail_armed,
        })
    }

    fn as_synthetic(&self) -> Option<&SyntheticJob> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_job_runs_to_exact_total() {
        let mut j = SyntheticJob::new(100);
        assert_eq!(j.run(30).unwrap(), 30);
        assert_eq!(j.run(200).unwrap(), 70);
        assert!(j.finished());
        assert_eq!(j.run(10).unwrap(), 0);
        let p = j.progress();
        assert_eq!(p.done, 100.0);
        assert_eq!(p.remaining, 0.0);
    }

    #[test]
    fn claimed_estimate_is_reported() {
        let j = SyntheticJob::with_claimed_estimate(100, 40.0);
        assert_eq!(j.progress().initial_estimate, 40.0);
        assert_eq!(j.progress().remaining, 100.0); // true remaining is exact
    }
}
