//! Priorities and their scheduling weights (paper Assumption 3: execution
//! speed is proportional to the weight associated with a query's priority).

/// Discrete priority levels with the conventional doubling weight ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Background work.
    Low,
    /// Default priority.
    #[default]
    Normal,
    /// Interactive / favored queries.
    High,
    /// Urgent administrative work.
    Critical,
}

impl Priority {
    /// Scheduling weight `w` for this priority.
    pub fn weight(self) -> f64 {
        match self {
            Priority::Low => 0.5,
            Priority::Normal => 1.0,
            Priority::High => 2.0,
            Priority::Critical => 4.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_positive_and_ordered() {
        let ws = [
            Priority::Low.weight(),
            Priority::Normal.weight(),
            Priority::High.weight(),
            Priority::Critical.weight(),
        ];
        assert!(ws.iter().all(|w| *w > 0.0));
        assert!(ws.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::default().weight(), 1.0);
    }
}
