//! Bucketed calendar queue for the scheduled-arrival timeline.
//!
//! Replaces the `BinaryHeap<Scheduled>` schedule. A binary heap pays
//! O(log n) per operation and, worse, every sift moves fat entries and
//! touches log n cache lines; with 10^5-10^6 pre-scheduled arrivals that
//! dominated the whole step loop. The calendar queue (Brown, CACM 1988)
//! hashes each event by time into a ring of buckets of `width` seconds and
//! pops by scanning forward from the current day, giving O(1) amortized
//! push/pop when events are spread over time — which scheduled arrivals,
//! retry timers, and fault boundaries are.
//!
//! Determinism contract (load-bearing for bit-identical replay):
//!
//! * Pop order is the exact total order by `(at, id)` — `f64::total_cmp`
//!   on time, then the monotonically assigned id, so simultaneous events
//!   dequeue FIFO in submission order. Internal bucket layout, resize
//!   history, and width are *never* observable through `pop`/`peek`.
//! * Each cell stores its integer day `trunc(at / width)` computed at
//!   push (and recomputed on resize), so bucket membership and the pop
//!   scan use the same integer and no float-boundary disagreement can
//!   reorder events. `at1 <= at2` implies `day1 <= day2` (division by a
//!   positive width and `trunc` are monotone), so the earliest nonempty
//!   day always holds the global minimum.
//! * Resizing doubles/halves the power-of-two bucket count when the
//!   population leaves [buckets/4, 2*buckets] and re-derives `width` from
//!   the deterministic population statistics (3x the mean gap
//!   `(max-min)/(len-1)`), so identical operation sequences always
//!   produce identical internal states.
//!
//! Buckets sort lazily: a bucket is left unsorted by pushes and sorted
//! (descending by `(at, id)`, so the minimum sits at the tail) the first
//! time a pop or min-rebuild targets it. That keeps a same-instant flood
//! of k events — every one hashing to the same cell, where classic
//! calendar queues degrade to O(k^2) rescans — at O(k log k) for the
//! whole drain, while steady sparse traffic never pays the sort (cells of
//! 0–2 entries are trivially sorted).
//!
//! The queue is generic over a small `Copy` payload (the scheduler stores
//! slab slots); checkpoints encode entries sorted by `(at, id)` and
//! rebuild by pushes, which is canonical by the first bullet.

/// One queued event, as seen by callers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry<T> {
    /// Due time (finite, non-negative).
    pub at: f64,
    /// Tie-break id; unique per live entry, FIFO for equal `at`.
    pub id: u64,
    /// Caller payload (the scheduler stores a slab slot).
    pub payload: T,
}

/// Internal cell: an [`Entry`] plus its cached integer day.
#[derive(Debug, Clone, Copy)]
struct Cell<T> {
    at: f64,
    id: u64,
    day: u64,
    payload: T,
}

/// One ring bucket: its cells plus whether they are currently sorted
/// descending by `(at, id)` (minimum at the tail).
#[derive(Debug, Clone)]
struct Bucket<T> {
    cells: Vec<Cell<T>>,
    sorted: bool,
}

impl<T> Bucket<T> {
    fn empty() -> Self {
        Bucket {
            cells: Vec::new(),
            sorted: true,
        }
    }
}

impl<T: Copy> Bucket<T> {
    /// Sort descending by `(at, id)` so the minimum is `cells.last()`.
    /// Keys are unique (ids are), so unstable sorting is deterministic.
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.cells
                .sort_unstable_by_key(|c| std::cmp::Reverse(key(c.at, c.id)));
            self.sorted = true;
        }
    }
}

const MIN_BUCKETS: usize = 16;

/// Calendar queue keyed by `(at, id)`. See the module docs for the
/// determinism contract.
#[derive(Debug, Clone)]
pub struct CalendarQueue<T> {
    buckets: Vec<Bucket<T>>,
    mask: usize,
    width: f64,
    len: usize,
    /// Cached `(at, id)` of the global minimum, kept exact by every
    /// mutation so `peek` is a load and `pop` knows which bucket to open.
    min: Option<(f64, u64)>,
}

impl<T: Copy> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T: Copy> CalendarQueue<T> {
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::empty()).collect(),
            mask: MIN_BUCKETS - 1,
            width: 1.0,
            len: 0,
            min: None,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `(at, id)` of the next event to pop, without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(f64, u64)> {
        self.min
    }

    /// Due time of the next event.
    #[inline]
    pub fn next_at(&self) -> Option<f64> {
        self.min.map(|(at, _)| at)
    }

    #[inline]
    fn day_of(&self, at: f64) -> u64 {
        // Saturating float->int cast; `at` is validated finite and >= 0.
        (at / self.width) as u64
    }

    pub fn push(&mut self, at: f64, id: u64, payload: T) {
        assert!(
            at.is_finite() && at >= 0.0,
            "calendar time must be finite and non-negative, got {at}"
        );
        if self.len + 1 > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
        let day = self.day_of(at);
        let b = (day as usize) & self.mask;
        let bucket = &mut self.buckets[b];
        // Appending below the current tail keeps a sorted bucket sorted;
        // anything else (including pushing onto an empty bucket) does too
        // only in the trivial cases handled here.
        bucket.sorted = match bucket.cells.last() {
            None => true,
            Some(last) => bucket.sorted && key(at, id) < key(last.at, last.id),
        };
        bucket.cells.push(Cell {
            at,
            id,
            day,
            payload,
        });
        self.len += 1;
        if self.min.is_none_or(|m| key(at, id) < key(m.0, m.1)) {
            self.min = Some((at, id));
        }
    }

    /// Remove and return the `(at, id)`-minimal entry.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        let (at, id) = self.min?;
        let day = self.day_of(at);
        let b = (day as usize) & self.mask;
        let bucket = &mut self.buckets[b];
        bucket.ensure_sorted();
        // The cached global minimum lives in this bucket and a sorted
        // bucket keeps its minimum at the tail.
        let cell = bucket
            .cells
            .pop()
            .expect("cached minimum must be present in its bucket");
        debug_assert_eq!((cell.at.to_bits(), cell.id), (at.to_bits(), id));
        self.len -= 1;
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        self.recompute_min(self.day_of(cell.at));
        Some(Entry {
            at: cell.at,
            id: cell.id,
            payload: cell.payload,
        })
    }

    /// Remove the entry with `id`, wherever it is. O(n); exists for
    /// cancellation paths and model-based tests, not the hot loop.
    pub fn cancel(&mut self, id: u64) -> Option<Entry<T>> {
        for b in 0..self.buckets.len() {
            if let Some(idx) = self.buckets[b].cells.iter().position(|c| c.id == id) {
                let cell = self.buckets[b].cells.swap_remove(idx);
                self.buckets[b].sorted = self.buckets[b].cells.len() <= 1;
                self.len -= 1;
                if self.min == Some((cell.at, cell.id)) {
                    self.recompute_min(self.day_of(cell.at));
                }
                if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
                    self.resize(self.buckets.len() / 2);
                }
                return Some(Entry {
                    at: cell.at,
                    id: cell.id,
                    payload: cell.payload,
                });
            }
        }
        None
    }

    /// All entries sorted by `(at, id)` — the canonical external view,
    /// used for checkpoints and shutdown draining.
    pub fn sorted_entries(&self) -> Vec<Entry<T>> {
        let mut out: Vec<Entry<T>> = self
            .buckets
            .iter()
            .flat_map(|b| &b.cells)
            .map(|c| Entry {
                at: c.at,
                id: c.id,
                payload: c.payload,
            })
            .collect();
        out.sort_by_key(|e| key(e.at, e.id));
        out
    }

    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.cells.clear();
            b.sorted = true;
        }
        self.len = 0;
        self.min = None;
    }

    /// Rebuild the cached minimum by scanning days forward from
    /// `from_day` (a lower bound on every remaining entry's day). After a
    /// fruitless full lap of the ring, fall back to a direct scan of the
    /// whole population (sparse mode).
    fn recompute_min(&mut self, from_day: u64) {
        if self.len == 0 {
            self.min = None;
            return;
        }
        let mut day = from_day;
        for _ in 0..self.buckets.len() {
            let bucket = &self.buckets[(day as usize) & self.mask];
            if bucket.sorted {
                // A sorted bucket's minimum is its tail; it is the day's
                // minimum exactly when it belongs to this day (an earlier
                // day would already have been drained, a later one means
                // the day is empty in this bucket).
                match bucket.cells.last() {
                    Some(c) if c.day == day => {
                        self.min = Some((c.at, c.id));
                        return;
                    }
                    _ => {}
                }
            } else {
                let mut best: Option<(f64, u64)> = None;
                for c in &bucket.cells {
                    if c.day == day && best.is_none_or(|m| key(c.at, c.id) < key(m.0, m.1)) {
                        best = Some((c.at, c.id));
                    }
                }
                if best.is_some() {
                    self.min = best;
                    return;
                }
            }
            day = match day.checked_add(1) {
                Some(d) => d,
                None => break,
            };
        }
        self.min = self
            .buckets
            .iter()
            .flat_map(|b| &b.cells)
            .map(|c| (c.at, c.id))
            .min_by_key(|&(at, id)| key(at, id));
    }

    /// Rebuild with `new_buckets` buckets (power of two) and a width of
    /// 3x the mean inter-event gap of the current population.
    fn resize(&mut self, new_buckets: usize) {
        debug_assert!(new_buckets.is_power_of_two() && new_buckets >= MIN_BUCKETS);
        let cells: Vec<Cell<T>> = self
            .buckets
            .iter_mut()
            .flat_map(|b| std::mem::take(&mut b.cells))
            .collect();
        if cells.len() >= 2 {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for c in &cells {
                lo = lo.min(c.at);
                hi = hi.max(c.at);
            }
            let width = (hi - lo) / (cells.len() as f64 - 1.0) * 3.0;
            if width.is_finite() && width > 0.0 {
                self.width = width;
            }
        }
        self.buckets = (0..new_buckets).map(|_| Bucket::empty()).collect();
        self.mask = new_buckets - 1;
        for mut c in cells {
            c.day = self.day_of(c.at);
            let b = (c.day as usize) & self.mask;
            let bucket = &mut self.buckets[b];
            bucket.sorted = match bucket.cells.last() {
                None => true,
                Some(last) => bucket.sorted && key(c.at, c.id) < key(last.at, last.id),
            };
            bucket.cells.push(c);
        }
        // `min` is a pure (at, id) fact; layout changes don't touch it.
    }
}

#[inline]
fn key(at: f64, id: u64) -> (u64, u64) {
    // total_cmp-compatible ordering for non-negative finite floats.
    (at.to_bits(), id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_id_order() {
        let mut q = CalendarQueue::new();
        q.push(2.0, 1, ());
        q.push(1.0, 2, ());
        q.push(1.0, 3, ());
        q.push(0.5, 9, ());
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.id)).collect();
        assert_eq!(order, vec![9, 2, 3, 1]);
        assert!(q.is_empty());
    }

    #[test]
    fn survives_growth_and_shrink() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u64 {
            // Deterministic scramble so pushes are far from sorted.
            let at = ((i * 7919) % 1000) as f64 * 0.013;
            q.push(at, i, i);
        }
        assert_eq!(q.len(), 1000);
        let mut last = (f64::NEG_INFINITY, 0u64);
        let mut seen = 0;
        while let Some(e) = q.pop() {
            assert!(key(e.at, e.id) > key(last.0.max(0.0), last.1) || seen == 0);
            assert!(e.at >= last.0);
            last = (e.at, e.id);
            seen += 1;
        }
        assert_eq!(seen, 1000);
    }

    #[test]
    fn cancel_removes_and_preserves_order() {
        let mut q = CalendarQueue::new();
        for i in 0..10u64 {
            q.push(i as f64, i, ());
        }
        assert_eq!(q.cancel(0).map(|e| e.id), Some(0));
        assert_eq!(q.cancel(5).map(|e| e.id), Some(5));
        assert_eq!(q.cancel(99), None);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.id)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 6, 7, 8, 9]);
    }

    #[test]
    fn identical_times_dequeue_fifo() {
        let mut q = CalendarQueue::new();
        for i in (0..100u64).rev() {
            q.push(1.5, i, ());
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.id)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn same_instant_flood_drains_fifo() {
        // 10^4 events at one instant land in one cell; the lazy bucket
        // sort keeps this O(k log k) instead of O(k^2) rescans.
        let mut q = CalendarQueue::new();
        for i in (0..10_000u64).rev() {
            q.push(0.0, i, i);
        }
        let mut expect = 0u64;
        while let Some(e) = q.pop() {
            assert_eq!(e.id, expect);
            expect += 1;
        }
        assert_eq!(expect, 10_000);
    }

    #[test]
    fn sorted_entries_is_canonical() {
        let mut q = CalendarQueue::new();
        q.push(3.0, 1, 'a');
        q.push(1.0, 2, 'b');
        q.push(1.0, 0, 'c');
        let sorted = q.sorted_entries();
        assert_eq!(
            sorted.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![0, 2, 1]
        );
        assert_eq!(q.len(), 3);
    }
}
