//! Deterministic pseudo-random numbers for experiments.
//!
//! A self-contained xoshiro256++ generator (public-domain algorithm by
//! Blackman & Vigna) seeded via SplitMix64. Experiments must be exactly
//! reproducible across runs and platforms, and the simulator needs `Clone`
//! for look-ahead, so we implement the generator here rather than depend on
//! an external crate's changing API.

/// xoshiro256++ PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed deterministically from one u64 (SplitMix64 expansion).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next_sm(), next_sm(), next_sm(), next_sm()];
        Rng { s }
    }

    /// The raw generator state, for checkpointing. Restoring with
    /// [`Rng::from_state`] resumes the stream at exactly this position.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from state captured by [`Rng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits → [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        // Lemire-style rejection for unbiased sampling.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let lo = m as u64;
            if lo >= n || lo >= (u64::MAX - n + 1) % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Exponentially distributed with the given rate (mean `1/rate`).
    pub fn exp(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0);
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / rate
    }
}

/// Sampler for the Zipfian distribution over ranks `1..=n` with exponent
/// `a`: `P(k) ∝ 1/k^a`. Used for the paper's query-size distributions
/// (`a = 1.2` in MCQ, `a = 2.2` in SCQ and workload management).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for ranks `1..=n`.
    pub fn new(n: usize, a: f64) -> Self {
        assert!(n >= 1, "support must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(a);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `1..=n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|c| c.total_cmp(&u)) {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Probability of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.cdf.len()).contains(&k), "rank out of range");
        let hi = self.cdf[k - 1];
        let lo = if k >= 2 { self.cdf[k - 2] } else { 0.0 };
        hi - lo
    }

    /// Number of ranks in the support.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Expected value of the rank.
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut m = 0.0;
        for (i, c) in self.cdf.iter().enumerate() {
            m += (i + 1) as f64 * (c - prev);
            prev = *c;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_in_unit_interval_and_roughly_uniform() {
        let mut r = Rng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean = {mean}");
    }

    #[test]
    fn below_is_unbiased_ish() {
        let mut r = Rng::seed_from_u64(2);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[r.below(5) as usize] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count = {c}");
        }
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut r = Rng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += r.exp(0.1);
        }
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn zipf_is_skewed_and_bounded() {
        let z = Zipf::new(50, 2.2);
        let mut r = Rng::seed_from_u64(4);
        let mut ones = 0;
        let n = 20_000;
        for _ in 0..n {
            let k = z.sample(&mut r);
            assert!((1..=50).contains(&k));
            if k == 1 {
                ones += 1;
            }
        }
        // For a=2.2 over 1..=50, P(1) ≈ 1/ζ ≈ 0.73.
        let p1 = ones as f64 / n as f64;
        assert!(p1 > 0.65 && p1 < 0.8, "P(1) = {p1}");
    }

    #[test]
    fn zipf_mean_matches_empirical() {
        let z = Zipf::new(50, 1.2);
        let mut r = Rng::seed_from_u64(5);
        let n = 200_000;
        let mut sum = 0usize;
        for _ in 0..n {
            sum += z.sample(&mut r);
        }
        let emp = sum as f64 / n as f64;
        assert!(
            (emp - z.mean()).abs() < 0.1,
            "emp {emp} vs analytic {}",
            z.mean()
        );
    }
}
