//! Generational struct-of-arrays slab for session state.
//!
//! The old core kept one ~200-byte `Session` object per query (name `Arc`,
//! boxed job, monitor, bookkeeping) in a `Vec<Session>`, so every scheduler
//! pass strode over cold fields and chased a `Box<dyn Job>` pointer per
//! session. The slab stores each field as its own column indexed by a slot,
//! so the per-step passes (weight sum, event horizon, grant, speed
//! monitors) each stream over exactly the columns they read.
//!
//! Slots are handed out as [`JobSlot`] — a `u32` index plus a generation
//! stamp bumped on every free, so a stale handle trips a `debug_assert`
//! instead of silently reading a recycled query's state. The runnable and
//! admission-queue collections store bare slots; the retry-`attempt` count
//! and finished-index live here as columns, replacing the two per-id
//! `HashMap`s the hot path used to hit.

use crate::intern::Sym;
use crate::job::JobState;
use crate::speed::SpeedMonitor;
use crate::system::QueryId;

/// Generational handle to a slab row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JobSlot {
    pub(crate) idx: u32,
    pub(crate) gen: u32,
}

/// Column store of per-session state. Columns are `pub(crate)` and indexed
/// directly in the hot loops; [`SessionSlab::at`] converts a handle to an
/// index with a generation check in debug builds.
#[derive(Debug, Default)]
pub(crate) struct SessionSlab {
    gen: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    pub(crate) id: Vec<QueryId>,
    pub(crate) name: Vec<Sym>,
    pub(crate) job: Vec<JobState>,
    pub(crate) weight: Vec<f64>,
    pub(crate) arrived: Vec<f64>,
    pub(crate) started: Vec<Option<f64>>,
    pub(crate) credit: Vec<f64>,
    pub(crate) units_done: Vec<f64>,
    pub(crate) monitor: Vec<SpeedMonitor>,
    pub(crate) blocked: Vec<bool>,
    pub(crate) rolling_back: Vec<Option<(f64, f64)>>,
    pub(crate) report_scale: Vec<f64>,
    /// Retry attempt this row was submitted as (0 = original submission).
    pub(crate) attempt: Vec<u32>,
}

impl SessionSlab {
    pub(crate) fn new() -> Self {
        SessionSlab::default()
    }

    /// Live (allocated, not freed) rows.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Handle -> column index, generation-checked in debug builds.
    #[inline]
    pub(crate) fn at(&self, h: JobSlot) -> usize {
        debug_assert_eq!(
            self.gen[h.idx as usize], h.gen,
            "stale JobSlot: slot {} was recycled",
            h.idx
        );
        h.idx as usize
    }

    /// Allocate a row for a freshly submitted/scheduled query. Fields not
    /// taken as arguments start at their submission-time invariants:
    /// no start time, zero credit and units, unblocked, no rollback,
    /// report scale 1.
    #[allow(clippy::too_many_arguments)] // column initializers, one per field
    pub(crate) fn alloc(
        &mut self,
        id: QueryId,
        name: Sym,
        job: JobState,
        weight: f64,
        arrived: f64,
        monitor: SpeedMonitor,
        attempt: u32,
    ) -> JobSlot {
        if let Some(idx) = self.free.pop() {
            let i = idx as usize;
            self.id[i] = id;
            self.name[i] = name;
            self.job[i] = job;
            self.weight[i] = weight;
            self.arrived[i] = arrived;
            self.started[i] = None;
            self.credit[i] = 0.0;
            self.units_done[i] = 0.0;
            self.monitor[i] = monitor;
            self.blocked[i] = false;
            self.rolling_back[i] = None;
            self.report_scale[i] = 1.0;
            self.attempt[i] = attempt;
            self.live += 1;
            JobSlot {
                idx,
                gen: self.gen[i],
            }
        } else {
            let idx = u32::try_from(self.id.len())
                .unwrap_or_else(|_| panic!("session slab overflow: more than u32::MAX rows"));
            self.gen.push(0);
            self.id.push(id);
            self.name.push(name);
            self.job.push(job);
            self.weight.push(weight);
            self.arrived.push(arrived);
            self.started.push(None);
            self.credit.push(0.0);
            self.units_done.push(0.0);
            self.monitor.push(monitor);
            self.blocked.push(false);
            self.rolling_back.push(None);
            self.report_scale.push(1.0);
            self.attempt.push(attempt);
            self.live += 1;
            JobSlot { idx, gen: 0 }
        }
    }

    /// Release a row. The job is replaced with an empty placeholder so any
    /// boxed cold-path job drops now rather than lingering in the pool.
    pub(crate) fn free(&mut self, h: JobSlot) {
        let i = self.at(h);
        self.gen[i] = self.gen[i].wrapping_add(1);
        self.job[i] = JobState::vacant();
        self.free.push(h.idx);
        self.live -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SyntheticJob;

    fn mk(slab: &mut SessionSlab, id: QueryId) -> JobSlot {
        slab.alloc(
            id,
            0,
            JobState::Synthetic(SyntheticJob::new(10)),
            1.0,
            0.0,
            SpeedMonitor::new_at(1.0, 0.0).unwrap(),
            0,
        )
    }

    #[test]
    fn alloc_reuses_freed_rows_with_new_generation() {
        let mut slab = SessionSlab::new();
        let a = mk(&mut slab, 1);
        let b = mk(&mut slab, 2);
        assert_eq!(slab.live(), 2);
        slab.free(a);
        assert_eq!(slab.live(), 1);
        let c = mk(&mut slab, 3);
        assert_eq!(c.idx, a.idx, "freed row is recycled");
        assert_ne!(c.gen, a.gen, "generation advances on recycle");
        assert_eq!(slab.id[slab.at(c)], 3);
        assert_eq!(slab.id[slab.at(b)], 2);
    }

    #[test]
    #[should_panic(expected = "stale JobSlot")]
    #[cfg(debug_assertions)]
    fn stale_handle_trips_generation_check() {
        let mut slab = SessionSlab::new();
        let a = mk(&mut slab, 1);
        slab.free(a);
        let _ = mk(&mut slab, 2);
        let _ = slab.at(a);
    }
}
