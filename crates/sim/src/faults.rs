//! Deterministic, seedable fault injection.
//!
//! The paper's estimator rests on three assumptions (§2.2) that §4 concedes
//! are violated in practice: a constant aggregate rate `C`, exactly known
//! remaining costs, and priority-proportional speeds. A [`FaultPlan`] is a
//! time-sorted script of violations — cost-estimate noise, rate dips,
//! mid-flight aborts with retry, arrival bursts, and engine page-read
//! faults — that [`System::install_faults`](crate::system::System::install_faults)
//! replays at exact virtual times. Everything is derived from one seed, so a
//! chaos campaign is reproducible bit-for-bit regardless of thread count.

use crate::rng::Rng;

/// One kind of injectable fault. Victim selection (where a victim is
/// needed) happens at injection time from the plan's seeded RNG, so the
/// same plan against the same workload always hits the same queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Multiply one running query's *reported* remaining cost by `factor`
    /// (violates Assumption 2; composes multiplicatively with earlier noise
    /// on the same victim). The scheduler keeps using ground truth.
    CostNoise {
        /// Multiplicative error, e.g. `0.5` or `2.0`.
        factor: f64,
    },
    /// Multiply the aggregate rate `C` by `factor` for `duration` seconds
    /// (violates Assumption 1). Progress indicators keep seeing the nominal
    /// rate — observing the dip only through speed monitors is the point.
    /// A new dip overrides any dip still in effect.
    RateDip {
        /// Rate multiplier in `(0, 1]`, e.g. `0.3` for a deep dip.
        factor: f64,
        /// How long the dip lasts, in virtual seconds.
        duration: f64,
    },
    /// Abort one running query with `overhead` units of rollback work, then
    /// resubmit a fresh copy through the admission queue per the plan's
    /// [`RetryPolicy`].
    AbortRetry {
        /// Rollback cost in work units (0 = instant abort).
        overhead: u64,
    },
    /// Submit `queries` synthetic queries of `cost` units each at once —
    /// an arrival burst that can overload the admission policy.
    Burst {
        /// Number of queries in the burst.
        queries: u32,
        /// True cost of each burst query, in work units.
        cost: u64,
    },
    /// Arm an engine-level page-read fault on one running query: its next
    /// `run` installment returns an `EngineError` instead of panicking.
    PageFault,
}

impl FaultKind {
    /// Stable short label for logs and CSV columns.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::CostNoise { .. } => "cost_noise",
            FaultKind::RateDip { .. } => "rate_dip",
            FaultKind::AbortRetry { .. } => "abort_retry",
            FaultKind::Burst { .. } => "burst",
            FaultKind::PageFault => "page_fault",
        }
    }
}

/// A fault scheduled at a virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Virtual time at which the fault fires.
    pub at: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// Capped exponential backoff with a max-attempts budget, governing how
/// aborted or failed queries are resubmitted through the admission queue.
/// The PI service reuses this exact shape for its queue-deadline backoff.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryPolicy {
    /// Delay before the first retry, in virtual seconds.
    pub base_delay: f64,
    /// Backoff multiplier per subsequent attempt (≥ 1).
    pub multiplier: f64,
    /// Cap on any single delay.
    pub max_delay: f64,
    /// Total retries allowed per query chain (0 = never retry).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay: 1.0,
            multiplier: 2.0,
            max_delay: 32.0,
            max_attempts: 3,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
    }

    /// Backoff delay before retry number `attempt` (1-based), or `None`
    /// once the attempts budget is exhausted.
    pub fn delay_for(&self, attempt: u32) -> Option<f64> {
        if attempt == 0 || attempt > self.max_attempts {
            return None;
        }
        let d = self.base_delay * self.multiplier.powi(attempt as i32 - 1);
        Some(d.min(self.max_delay))
    }
}

/// How many faults of each kind to generate, and from what parameter
/// ranges. All ranges are sampled uniformly.
#[derive(Debug, Clone)]
pub struct FaultMix {
    /// Number of [`FaultKind::CostNoise`] events.
    pub cost_noise: usize,
    /// Number of [`FaultKind::RateDip`] events.
    pub rate_dips: usize,
    /// Number of [`FaultKind::AbortRetry`] events.
    pub abort_retries: usize,
    /// Number of [`FaultKind::Burst`] events.
    pub bursts: usize,
    /// Number of [`FaultKind::PageFault`] events.
    pub page_faults: usize,
    /// Range of the cost-noise multiplier.
    pub noise_range: (f64, f64),
    /// Range of the rate-dip multiplier (upper bound ≤ 1).
    pub dip_range: (f64, f64),
    /// Range of the rate-dip duration in seconds.
    pub dip_duration: (f64, f64),
    /// Range of the abort rollback overhead in units.
    pub abort_overhead: (u64, u64),
    /// Range of the burst size in queries.
    pub burst_queries: (u32, u32),
    /// Range of each burst query's cost in units.
    pub burst_cost: (u64, u64),
}

impl Default for FaultMix {
    fn default() -> Self {
        FaultMix {
            cost_noise: 0,
            rate_dips: 0,
            abort_retries: 0,
            bursts: 0,
            page_faults: 0,
            noise_range: (0.25, 4.0),
            dip_range: (0.2, 0.9),
            dip_duration: (1.0, 10.0),
            abort_overhead: (0, 200),
            burst_queries: (2, 6),
            burst_cost: (50, 500),
        }
    }
}

impl FaultMix {
    /// An even mix with `per_kind` events of every kind.
    pub fn even(per_kind: usize) -> Self {
        FaultMix {
            cost_noise: per_kind,
            rate_dips: per_kind,
            abort_retries: per_kind,
            bursts: per_kind,
            page_faults: per_kind,
            ..FaultMix::default()
        }
    }

    /// Total number of events this mix generates.
    pub fn total(&self) -> usize {
        self.cost_noise + self.rate_dips + self.abort_retries + self.bursts + self.page_faults
    }
}

/// A time-sorted script of faults plus the seed that drives victim
/// selection at injection time.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// Seed for injection-time randomness (victim picks).
    pub seed: u64,
    /// How aborted/failed queries are resubmitted.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// Build a plan from explicit events (sorted by time; ties keep their
    /// given order).
    pub fn new(mut events: Vec<FaultEvent>, seed: u64, retry: RetryPolicy) -> Self {
        events.sort_by(|a, b| a.at.total_cmp(&b.at));
        FaultPlan {
            events,
            seed,
            retry,
        }
    }

    /// Generate a plan deterministically from a seed: event times are
    /// uniform over `[0, horizon)` and parameters are drawn from the mix's
    /// ranges. The same `(seed, horizon, mix)` always yields the same plan.
    pub fn generate(seed: u64, horizon: f64, mix: &FaultMix) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(mix.total());
        for _ in 0..mix.cost_noise {
            let at = rng.range_f64(0.0, horizon);
            let factor = rng.range_f64(mix.noise_range.0, mix.noise_range.1);
            events.push(FaultEvent {
                at,
                kind: FaultKind::CostNoise { factor },
            });
        }
        for _ in 0..mix.rate_dips {
            let at = rng.range_f64(0.0, horizon);
            let factor = rng.range_f64(mix.dip_range.0, mix.dip_range.1);
            let duration = rng.range_f64(mix.dip_duration.0, mix.dip_duration.1);
            events.push(FaultEvent {
                at,
                kind: FaultKind::RateDip { factor, duration },
            });
        }
        for _ in 0..mix.abort_retries {
            let at = rng.range_f64(0.0, horizon);
            let span = mix.abort_overhead.1.saturating_sub(mix.abort_overhead.0);
            let overhead = mix.abort_overhead.0 + if span > 0 { rng.below(span + 1) } else { 0 };
            events.push(FaultEvent {
                at,
                kind: FaultKind::AbortRetry { overhead },
            });
        }
        for _ in 0..mix.bursts {
            let at = rng.range_f64(0.0, horizon);
            let qspan = mix.burst_queries.1.saturating_sub(mix.burst_queries.0);
            let queries = mix.burst_queries.0
                + if qspan > 0 {
                    rng.below(qspan as u64 + 1) as u32
                } else {
                    0
                };
            let cspan = mix.burst_cost.1.saturating_sub(mix.burst_cost.0);
            let cost = mix.burst_cost.0 + if cspan > 0 { rng.below(cspan + 1) } else { 0 };
            events.push(FaultEvent {
                at,
                kind: FaultKind::Burst { queries, cost },
            });
        }
        for _ in 0..mix.page_faults {
            let at = rng.range_f64(0.0, horizon);
            events.push(FaultEvent {
                at,
                kind: FaultKind::PageFault,
            });
        }
        FaultPlan::new(events, seed, RetryPolicy::default())
    }

    /// The scheduled events, earliest first.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let mix = FaultMix::even(4);
        let a = FaultPlan::generate(7, 100.0, &mix);
        let b = FaultPlan::generate(7, 100.0, &mix);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 20);
        for w in a.events().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let c = FaultPlan::generate(8, 100.0, &mix);
        assert_ne!(a.events(), c.events());
    }

    #[test]
    fn generated_parameters_stay_in_range() {
        let mix = FaultMix::even(50);
        let plan = FaultPlan::generate(3, 200.0, &mix);
        for ev in plan.events() {
            assert!((0.0..200.0).contains(&ev.at));
            match ev.kind {
                FaultKind::CostNoise { factor } => {
                    assert!((0.25..=4.0).contains(&factor));
                }
                FaultKind::RateDip { factor, duration } => {
                    assert!((0.2..=0.9).contains(&factor));
                    assert!((1.0..=10.0).contains(&duration));
                }
                FaultKind::AbortRetry { overhead } => assert!(overhead <= 200),
                FaultKind::Burst { queries, cost } => {
                    assert!((2..=6).contains(&queries));
                    assert!((50..=500).contains(&cost));
                }
                FaultKind::PageFault => {}
            }
        }
    }

    #[test]
    fn retry_backoff_is_capped_exponential_with_budget() {
        let p = RetryPolicy {
            base_delay: 1.0,
            multiplier: 2.0,
            max_delay: 5.0,
            max_attempts: 4,
        };
        assert_eq!(p.delay_for(1), Some(1.0));
        assert_eq!(p.delay_for(2), Some(2.0));
        assert_eq!(p.delay_for(3), Some(4.0));
        assert_eq!(p.delay_for(4), Some(5.0)); // capped
        assert_eq!(p.delay_for(5), None); // budget exhausted
        assert_eq!(p.delay_for(0), None);
        assert_eq!(RetryPolicy::none().delay_for(1), None);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultKind::PageFault.label(), "page_fault");
        assert_eq!(FaultKind::CostNoise { factor: 2.0 }.label(), "cost_noise");
    }
}
