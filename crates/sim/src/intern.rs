//! String interner for session/query names.
//!
//! The scheduler's hot structures store names as dense `u32` symbols; the
//! backing `Arc<str>` is resolved only at trace/report boundaries (obs
//! emission, snapshots, finished records). Interning a name the system has
//! seen before is a hash lookup with no allocation, so workloads that reuse
//! a label (retries, bursts, benchmark streams) pay nothing per submission.
//!
//! Symbols are never observable outside the crate: checkpoints store a
//! compacted name table and re-intern on restore, so symbol numbering is
//! free to differ between a restored system and one that never stopped
//! without any behavioral difference.

use std::collections::HashMap;
use std::sync::Arc;

/// Interned name symbol. Dense, starting at 0, private to the scheduler.
pub(crate) type Sym = u32;

/// Append-only intern table.
#[derive(Debug, Default)]
pub(crate) struct Interner {
    names: Vec<Arc<str>>,
    map: HashMap<Arc<str>, Sym>,
}

impl Interner {
    pub(crate) fn new() -> Self {
        Interner::default()
    }

    /// Intern `name`, returning its symbol. Existing names are deduplicated
    /// (the freshly converted `Arc` is dropped); new names append.
    pub(crate) fn intern(&mut self, name: Arc<str>) -> Sym {
        if let Some(&sym) = self.map.get(&name) {
            return sym;
        }
        let sym = u32::try_from(self.names.len()).unwrap_or_else(|_| {
            // 2^32 distinct live names would out-size any simulated
            // workload by orders of magnitude; treat as a logic error.
            panic!("interner overflow: more than u32::MAX distinct names")
        });
        self.names.push(Arc::clone(&name));
        self.map.insert(name, sym);
        sym
    }

    /// The name behind `sym`. Symbols only come from [`Interner::intern`],
    /// so out-of-range access is a crate-internal logic error.
    #[inline]
    pub(crate) fn resolve(&self, sym: Sym) -> &Arc<str> {
        &self.names[sym as usize]
    }

    /// Number of distinct interned names (== one past the largest symbol).
    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_and_resolves() {
        let mut i = Interner::new();
        let a = i.intern("alpha".into());
        let b = i.intern("beta".into());
        let a2 = i.intern("alpha".into());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a).as_ref(), "alpha");
        assert_eq!(i.resolve(b).as_ref(), "beta");
    }
}
