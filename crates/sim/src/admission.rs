//! Admission-queue policies.
//!
//! An RDBMS typically limits concurrent queries; newly arrived queries wait
//! in a FIFO admission queue (paper §2.3). The queue is also what gives a
//! multi-query PI extra visibility into the future — queued queries are
//! *known* future work.

/// When a newly submitted query may start executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Every query starts immediately.
    #[default]
    Unlimited,
    /// At most this many queries occupy execution slots; the rest queue
    /// (unboundedly — an arrival burst can grow the queue without limit).
    MaxConcurrent(usize),
    /// At most `slots` concurrent queries and at most `queue` waiting ones;
    /// arrivals beyond both are *rejected* (load shedding) instead of
    /// growing the queue unboundedly. Rejected queries leave immediately as
    /// [`FinishKind::Rejected`](crate::system::FinishKind::Rejected).
    Bounded {
        /// Execution slots.
        slots: usize,
        /// Waiting-queue capacity.
        queue: usize,
    },
}

impl AdmissionPolicy {
    /// Can another query be admitted given the current occupancy?
    pub fn admits(&self, occupied_slots: usize) -> bool {
        match self {
            AdmissionPolicy::Unlimited => true,
            AdmissionPolicy::MaxConcurrent(k) => occupied_slots < *k,
            AdmissionPolicy::Bounded { slots, .. } => occupied_slots < *slots,
        }
    }

    /// Can a query that was not admitted wait, given the current queue
    /// length? `false` means the arrival is shed.
    pub fn queue_accepts(&self, queued: usize) -> bool {
        match self {
            AdmissionPolicy::Unlimited | AdmissionPolicy::MaxConcurrent(_) => true,
            AdmissionPolicy::Bounded { queue, .. } => queued < *queue,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_admits() {
        assert!(AdmissionPolicy::Unlimited.admits(0));
        assert!(AdmissionPolicy::Unlimited.admits(10_000));
    }

    #[test]
    fn max_concurrent_gates() {
        let p = AdmissionPolicy::MaxConcurrent(2);
        assert!(p.admits(0));
        assert!(p.admits(1));
        assert!(!p.admits(2));
        assert!(!p.admits(3));
        assert!(p.queue_accepts(10_000));
    }

    #[test]
    fn bounded_sheds_beyond_queue_capacity() {
        let p = AdmissionPolicy::Bounded { slots: 2, queue: 3 };
        assert!(p.admits(1));
        assert!(!p.admits(2));
        assert!(p.queue_accepts(0));
        assert!(p.queue_accepts(2));
        assert!(!p.queue_accepts(3));
        assert!(!p.queue_accepts(4));
    }
}
