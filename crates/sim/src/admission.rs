//! Admission-queue policies.
//!
//! An RDBMS typically limits concurrent queries; newly arrived queries wait
//! in a FIFO admission queue (paper §2.3). The queue is also what gives a
//! multi-query PI extra visibility into the future — queued queries are
//! *known* future work.

/// When a newly submitted query may start executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Every query starts immediately.
    #[default]
    Unlimited,
    /// At most this many queries occupy execution slots; the rest queue.
    MaxConcurrent(usize),
}

impl AdmissionPolicy {
    /// Can another query be admitted given the current occupancy?
    pub fn admits(&self, occupied_slots: usize) -> bool {
        match self {
            AdmissionPolicy::Unlimited => true,
            AdmissionPolicy::MaxConcurrent(k) => occupied_slots < *k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_admits() {
        assert!(AdmissionPolicy::Unlimited.admits(0));
        assert!(AdmissionPolicy::Unlimited.admits(10_000));
    }

    #[test]
    fn max_concurrent_gates() {
        let p = AdmissionPolicy::MaxConcurrent(2);
        assert!(p.admits(0));
        assert!(p.admits(1));
        assert!(!p.admits(2));
        assert!(!p.admits(3));
    }
}
