//! Observed execution-speed monitors.
//!
//! A single-query PI estimates remaining time as `t = c / s` where `s` is
//! the *currently observed* execution speed (paper §2). The monitor here is
//! an exponentially-weighted average of instantaneous speed with a
//! configurable time constant — it reacts to load changes with a lag, which
//! is precisely the behaviour that makes single-query PIs mispredict when
//! concurrent queries finish.

use mqpi_engine::error::{EngineError, Result};

/// Exponentially-smoothed speed estimate over virtual time.
#[derive(Debug, Clone)]
pub struct SpeedMonitor {
    tau: f64,
    last_t: f64,
    last_units: f64,
    ema: Option<f64>,
}

impl SpeedMonitor {
    /// Create a monitor with smoothing time constant `tau` seconds; larger
    /// values average over a longer window. A non-positive or non-finite
    /// `tau` is a configuration error, not a panic.
    pub fn new(tau: f64) -> Result<Self> {
        Self::new_at(tau, 0.0)
    }

    /// Create a monitor whose baseline is time `t0` (for queries that start
    /// mid-simulation).
    pub fn new_at(tau: f64, t0: f64) -> Result<Self> {
        if !(tau > 0.0 && tau.is_finite()) {
            return Err(EngineError::exec(format!(
                "speed monitor time constant must be positive and finite, got {tau}"
            )));
        }
        Ok(SpeedMonitor {
            tau,
            last_t: t0,
            last_units: 0.0,
            ema: None,
        })
    }

    /// Decompose into `(tau, last_t, last_units, ema)` for checkpointing.
    pub fn to_parts(&self) -> (f64, f64, f64, Option<f64>) {
        (self.tau, self.last_t, self.last_units, self.ema)
    }

    /// Rebuild a monitor from parts captured by [`SpeedMonitor::to_parts`];
    /// `tau` is re-validated like in [`SpeedMonitor::new`].
    pub fn from_parts(tau: f64, last_t: f64, last_units: f64, ema: Option<f64>) -> Result<Self> {
        let mut m = Self::new_at(tau, last_t)?;
        m.last_units = last_units;
        m.ema = ema;
        Ok(m)
    }

    /// Record the cumulative `units` completed by time `t`.
    pub fn update(&mut self, t: f64, units: f64) {
        let dt = t - self.last_t;
        if dt <= 0.0 {
            return;
        }
        let inst = (units - self.last_units).max(0.0) / dt;
        let alpha = 1.0 - (-dt / self.tau).exp();
        self.ema = Some(match self.ema {
            None => inst,
            Some(prev) => prev + alpha * (inst - prev),
        });
        self.last_t = t;
        self.last_units = units;
    }

    /// Current speed estimate in units/second (`None` before the first
    /// sample interval elapses).
    pub fn speed(&self) -> Option<f64> {
        self.ema
    }

    /// [`SpeedMonitor::update`] with the smoothing factor hoisted out.
    ///
    /// Every running session's monitor is updated on every scheduler step,
    /// so at step end all monitors share the same `last_t` and the same
    /// `tau` — which makes `alpha = 1 - exp(-dt/tau)` bitwise identical
    /// across sessions. The scheduler computes it once per step and passes
    /// it in, turning n `exp()` calls per step into one. The guard checks
    /// that this monitor really is in lockstep (`dt`, `tau` both match) and
    /// otherwise falls back to the full update, so the result is always
    /// bit-identical to calling [`SpeedMonitor::update`].
    #[inline]
    pub(crate) fn update_with_alpha(&mut self, t: f64, units: f64, dt: f64, tau: f64, alpha: f64) {
        if t - self.last_t != dt || self.tau != tau {
            self.update(t, units);
            return;
        }
        // dt > 0 here: the caller skips the monitor pass entirely when the
        // step did not advance the clock, matching update()'s early return.
        let inst = (units - self.last_units).max(0.0) / dt;
        self.ema = Some(match self.ema {
            None => inst,
            Some(prev) => prev + alpha * (inst - prev),
        });
        self.last_t = t;
        self.last_units = units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_speed_is_measured_exactly() {
        let mut m = SpeedMonitor::new(5.0).unwrap();
        for i in 1..=100 {
            m.update(i as f64, 10.0 * i as f64);
        }
        let s = m.speed().unwrap();
        assert!((s - 10.0).abs() < 1e-9, "speed = {s}");
    }

    #[test]
    fn reacts_to_speed_changes_with_lag() {
        let mut m = SpeedMonitor::new(5.0).unwrap();
        let mut units = 0.0;
        for i in 1..=50 {
            units += 10.0;
            m.update(i as f64, units);
        }
        // Speed doubles at t=50.
        let before = m.speed().unwrap();
        for i in 51..=53 {
            units += 20.0;
            m.update(i as f64, units);
        }
        let shortly_after = m.speed().unwrap();
        assert!(
            shortly_after > before && shortly_after < 20.0,
            "lagging EMA"
        );
        for i in 54..=120 {
            units += 20.0;
            m.update(i as f64, units);
        }
        let converged = m.speed().unwrap();
        assert!((converged - 20.0).abs() < 0.5, "converged = {converged}");
    }

    #[test]
    fn zero_dt_updates_are_ignored() {
        let mut m = SpeedMonitor::new(1.0).unwrap();
        m.update(1.0, 5.0);
        let s0 = m.speed();
        m.update(1.0, 50.0);
        assert_eq!(m.speed(), s0);
    }

    #[test]
    fn zero_tau_is_a_constructor_error() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = SpeedMonitor::new(bad).expect_err("tau must be rejected");
            assert!(err.to_string().contains("time constant"), "err: {err}");
        }
        assert!(SpeedMonitor::new_at(0.0, 5.0).is_err());
    }
}
