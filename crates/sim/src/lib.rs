//! `mqpi-sim` — a virtual-time multi-query execution environment.
//!
//! The paper's prototype runs inside PostgreSQL and measures wall-clock
//! time; reproducing its experiments (hundreds of runs, hundreds of virtual
//! seconds each) requires a simulated clock. This crate provides one, while
//! keeping the *work* real: queries are engine cursors executing actual
//! tuples, and the scheduler hands out work-unit quanta.
//!
//! The model implements the paper's Assumptions 1–3 (§2.1):
//!
//! 1. the RDBMS processes `C` work units per second in total, independent of
//!    how many queries run ([`SystemConfig`]'s `rate` parameter);
//! 2. remaining costs are whatever the engine's refined progress reports
//!    (exactly true only for oracle jobs);
//! 3. each running query executes at speed `C·w_i / Σw_j` — implemented by
//!    generalized-processor-sharing quanta in [`System::step`].
//!
//! Modules: [`job`] (the unit of schedulable work — engine cursors or
//! synthetic jobs), [`weights`] (priority → weight), [`admission`]
//! (admission-queue policies), [`arrivals`] (Poisson arrival processes),
//! [`speed`] (observed-speed monitors used by single-query PIs),
//! [`system`] (the scheduler itself and its snapshots).

pub mod admission;
pub mod arrivals;
pub mod calendar;
mod checkpoint;
pub mod faults;
mod intern;
pub mod job;
pub mod rng;
mod slab;
pub mod speed;
pub mod system;
pub mod weights;

pub use admission::AdmissionPolicy;
pub use arrivals::PoissonArrivals;
pub use faults::{FaultEvent, FaultKind, FaultMix, FaultPlan, RetryPolicy};
pub use job::{CursorJob, Job, JobProgress, JobSnapshot, SyntheticJob};
pub use rng::{Rng, Zipf};
pub use speed::SpeedMonitor;
pub use system::{
    ErrorPolicy, FaultStats, FinishKind, FinishedQuery, InjectedFault, QueryId, QueryState,
    QueuedState, RateModel, SimEvent, StepMode, System, SystemConfig, SystemSnapshot,
};
pub use weights::Priority;
