//! Query arrival processes.
//!
//! The paper's SCQ experiment (§5.2.3) feeds the system with a Poisson
//! stream of queries of Zipfian-distributed cost. [`PoissonArrivals`]
//! generates the arrival *times*; what arrives is up to the caller.

use crate::rng::Rng;

/// Exponential inter-arrival-time generator (Poisson process with rate λ).
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    lambda: f64,
    rng: Rng,
    now: f64,
}

impl PoissonArrivals {
    /// A Poisson process with `lambda` arrivals per second, starting at
    /// time 0, seeded deterministically.
    pub fn new(lambda: f64, seed: u64) -> Self {
        assert!(lambda >= 0.0, "rate must be non-negative");
        PoissonArrivals {
            lambda,
            rng: Rng::seed_from_u64(seed),
            now: 0.0,
        }
    }

    /// The process rate λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Next arrival time (monotonically increasing); `None` when λ = 0.
    pub fn next_arrival(&mut self) -> Option<f64> {
        if self.lambda <= 0.0 {
            return None;
        }
        self.now += self.rng.exp(self.lambda);
        Some(self.now)
    }

    /// All arrival times up to `horizon`.
    pub fn arrivals_until(&mut self, horizon: f64) -> Vec<f64> {
        let mut out = Vec::new();
        loop {
            let peek = self.clone().next_arrival();
            match peek {
                Some(t) if t <= horizon => {
                    self.next_arrival();
                    out.push(t);
                }
                _ => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_interarrival_matches_rate() {
        let mut p = PoissonArrivals::new(0.1, 42);
        let n = 5000;
        let mut last = 0.0;
        let mut sum = 0.0;
        for _ in 0..n {
            let t = p.next_arrival().unwrap();
            sum += t - last;
            last = t;
        }
        let mean = sum / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean inter-arrival = {mean}");
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut p = PoissonArrivals::new(1.0, 7);
        let mut prev = 0.0;
        for _ in 0..100 {
            let t = p.next_arrival().unwrap();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn zero_rate_never_arrives() {
        let mut p = PoissonArrivals::new(0.0, 1);
        assert_eq!(p.next_arrival(), None);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = PoissonArrivals::new(0.5, 99);
        let mut b = PoissonArrivals::new(0.5, 99);
        for _ in 0..20 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }

    #[test]
    fn arrivals_until_respects_horizon() {
        let mut p = PoissonArrivals::new(0.2, 3);
        let v = p.arrivals_until(100.0);
        assert!(v.iter().all(|t| *t <= 100.0));
        // Rate 0.2 over 100s ⇒ ~20 arrivals.
        assert!(v.len() > 5 && v.len() < 60, "got {}", v.len());
        // Continuation starts after the horizon.
        let next = p.next_arrival().unwrap();
        assert!(next > *v.last().unwrap());
    }
}
