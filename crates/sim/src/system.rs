//! The multi-query scheduler: generalized processor sharing in virtual time.
//!
//! Every [`System::step`] distributes one quantum of work units among the
//! running queries in proportion to their weights and advances the virtual
//! clock by `quantum_units / rate` seconds (shortened to hit scheduled
//! arrivals exactly). Queries are [`Job`]s — engine cursors doing real work
//! or synthetic jobs with exact costs.
//!
//! When every unblocked job knows its exact remaining work
//! ([`Job::exact_remaining`], true for synthetic jobs),
//! [`StepMode::EventDriven`] lets a step jump the clock straight to the
//! next completion/arrival/step-limit boundary instead of grinding through
//! `total_work / quantum_units` quanta. Engine-cursor jobs keep the quantum
//! path, which also remains available as a cross-check.
//!
//! The system also implements the workload-management verbs the paper's §3
//! algorithms need: [`System::block`], [`System::resume`], and
//! [`System::abort`].
//!
//! # Data-oriented core
//!
//! Session state lives in a struct-of-arrays slab
//! (`crate::slab::SessionSlab`): the running set, admission queue, and
//! scheduled-arrival timeline store 8-byte [`JobSlot`] handles, and each
//! per-step pass streams over exactly the columns it reads. Names are
//! interned to `u32` symbols and resolved only at trace/report boundaries;
//! the arrival timeline is a bucketed [`CalendarQueue`] with O(1) amortized
//! push/pop instead of a binary heap of fat entries. The steady-state step
//! path performs no heap allocation: completion ids accumulate in scratch
//! buffers owned by the `System`. See `DESIGN.md` §12 for the layout and
//! the determinism argument.

use std::collections::VecDeque;
use std::sync::Arc;

use mqpi_ckpt::{CkptError, Dec, Enc};
use mqpi_engine::error::{EngineError, Result};
use mqpi_obs::{Obs, TraceKind, SECOND_BUCKETS, UNIT_BUCKETS};

use crate::admission::AdmissionPolicy;
use crate::calendar::CalendarQueue;
use crate::checkpoint as ckpt;
use crate::faults::{FaultKind, FaultPlan};
use crate::intern::{Interner, Sym};
use crate::job::{Job, JobState};
use crate::rng::Rng;
use crate::slab::{JobSlot, SessionSlab};
use crate::speed::SpeedMonitor;

/// Identifier of a query within one `System`.
pub type QueryId = u64;

/// How the aggregate processing rate depends on the number of running
/// queries. The paper's Assumption 1 is [`RateModel::Constant`];
/// [`RateModel::Contention`] deliberately violates it for the §4.1
/// robustness ablation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RateModel {
    /// `C(n) = C` — Assumption 1 holds exactly.
    #[default]
    Constant,
    /// `C(n) = C / (1 + alpha·(n−1))` — every additional concurrent query
    /// costs `alpha` of contention overhead (buffer-pool interference,
    /// context switching), so total throughput *decreases* with load.
    Contention {
        /// Per-extra-query slowdown factor (e.g. 0.05).
        alpha: f64,
    },
}

impl RateModel {
    /// Effective aggregate rate for `n` unblocked running queries.
    pub fn effective_rate(&self, base: f64, n: usize) -> f64 {
        match self {
            RateModel::Constant => base,
            RateModel::Contention { alpha } => base / (1.0 + alpha * (n.saturating_sub(1)) as f64),
        }
    }
}

/// How [`System::step`] advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Fixed work quantum per step (`quantum_units / rate` seconds).
    #[default]
    Quantum,
    /// Jump each step straight to the next completion or arrival whenever
    /// every unblocked running job reports [`Job::exact_remaining`]; steps
    /// fall back to the quantum path otherwise (engine cursors).
    EventDriven,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Aggregate processing rate `C` in work units per second
    /// (Assumption 1).
    pub rate: f64,
    /// Work units distributed per scheduling quantum. Smaller = closer to
    /// the fluid (GPS) ideal, slower to simulate.
    pub quantum_units: f64,
    /// Admission policy.
    pub admission: AdmissionPolicy,
    /// Time constant of the per-query observed-speed monitors.
    pub speed_tau: f64,
    /// How the aggregate rate responds to concurrency (Assumption 1 knob).
    pub rate_model: RateModel,
    /// Quantum grind vs event-driven fast-forward.
    pub step_mode: StepMode,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            rate: 60.0,
            quantum_units: 16.0,
            admission: AdmissionPolicy::Unlimited,
            speed_tau: 10.0,
            rate_model: RateModel::Constant,
            step_mode: StepMode::Quantum,
        }
    }
}

/// How a query left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FinishKind {
    /// Ran to completion.
    Completed,
    /// Killed by a workload-management action.
    Aborted,
    /// Removed after its job returned an execution error while
    /// [`ErrorPolicy::Isolate`] was in effect.
    Failed,
    /// Shed at submission: the admission policy's bounded queue was full.
    Rejected,
}

impl FinishKind {
    /// Stable lowercase label used in trace lines and per-kind metric names.
    pub fn label(&self) -> &'static str {
        match self {
            FinishKind::Completed => "completed",
            FinishKind::Aborted => "aborted",
            FinishKind::Failed => "failed",
            FinishKind::Rejected => "rejected",
        }
    }
}

/// Record of a query that left the system.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FinishedQuery {
    /// Query id.
    pub id: QueryId,
    /// Query name (caller-supplied label).
    pub name: Arc<str>,
    /// Scheduling weight.
    pub weight: f64,
    /// Arrival time.
    pub arrived: f64,
    /// Execution start time (None if aborted while queued).
    pub started: Option<f64>,
    /// Completion/abort time.
    pub finished: f64,
    /// Completion vs abort.
    pub kind: FinishKind,
    /// Work units completed.
    pub units_done: f64,
    /// Estimated remaining cost at the moment of leaving (0 when completed).
    pub remaining_at_end: f64,
    /// Rollback work executed after an abort, on top of `units_done`.
    /// Zero except for queries that left via `abort_with_overhead`. Work
    /// conservation: the system's total executed units equal
    /// `Σ (units_done + rollback_units)` over finished plus live sessions.
    pub rollback_units: f64,
}

/// Point-in-time state of a running (or blocked) query.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct QueryState {
    /// Query id.
    pub id: QueryId,
    /// Query name.
    pub name: Arc<str>,
    /// Scheduling weight.
    pub weight: f64,
    /// Arrival time.
    pub arrived: f64,
    /// Start time.
    pub started: f64,
    /// Work done so far (units).
    pub done: f64,
    /// Refined remaining-cost estimate (units).
    pub remaining: f64,
    /// The pre-execution cost estimate.
    pub initial_estimate: f64,
    /// Observed speed (units/s) from this query's monitor.
    pub observed_speed: Option<f64>,
    /// Whether the query is currently blocked.
    pub blocked: bool,
    /// Whether the query is executing rollback work after an abort.
    pub rolling_back: bool,
}

/// Point-in-time state of a queued query.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct QueuedState {
    /// Query id.
    pub id: QueryId,
    /// Query name.
    pub name: Arc<str>,
    /// Scheduling weight it will run with.
    pub weight: f64,
    /// Arrival time.
    pub arrived: f64,
    /// Estimated total cost (pre-execution estimate).
    pub est_cost: f64,
}

/// Snapshot consumed by progress indicators.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SystemSnapshot {
    /// Virtual time of the snapshot.
    pub time: f64,
    /// Aggregate processing rate `C`.
    pub rate: f64,
    /// Running and blocked queries.
    pub running: Vec<QueryState>,
    /// Admission queue, front first.
    pub queued: Vec<QueuedState>,
}

/// One scheduler state change, published on the opt-in event feed
/// ([`System::enable_event_feed`]) so an incrementally maintained predictor
/// (`mqpi_core::IncrementalFluid`, the PI session service) can apply delta
/// updates instead of rebuilding from a full [`SystemSnapshot`] every tick.
///
/// Events carry exactly what the snapshot path would report (costs are
/// scaled by any injected cost noise), in the order the scheduler applied
/// them, stamped with the virtual time of application.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum SimEvent {
    /// A query started executing (admitted immediately or from the queue).
    Admitted {
        at: f64,
        id: QueryId,
        cost: f64,
        weight: f64,
    },
    /// A query entered the admission queue.
    Enqueued {
        at: f64,
        id: QueryId,
        cost: f64,
        weight: f64,
    },
    /// A query left the system (completed, aborted, failed, or shed).
    Departed {
        at: f64,
        id: QueryId,
        kind: FinishKind,
    },
    /// A running query blocked (receives no service until resumed).
    Blocked { at: f64, id: QueryId },
    /// A blocked query resumed.
    Resumed { at: f64, id: QueryId },
    /// A running query's reported remaining cost changed discontinuously
    /// (injected cost noise, or an abort that left rollback work behind).
    CostRefined {
        at: f64,
        id: QueryId,
        remaining: f64,
    },
    /// The effective aggregate rate changed (a rate dip began or expired).
    RateChanged { at: f64, rate: f64 },
}

impl SimEvent {
    /// Virtual time the event was applied.
    pub fn at(&self) -> f64 {
        match *self {
            SimEvent::Admitted { at, .. }
            | SimEvent::Enqueued { at, .. }
            | SimEvent::Departed { at, .. }
            | SimEvent::Blocked { at, .. }
            | SimEvent::Resumed { at, .. }
            | SimEvent::CostRefined { at, .. }
            | SimEvent::RateChanged { at, .. } => at,
        }
    }

    /// Flatten to the `(tag, at, id, a, b)` wire quintuple used by
    /// journaling layers (e.g. a WAL `SimEvent` record). Inverse of
    /// [`SimEvent::from_tap`].
    pub fn to_tap(&self) -> (u8, f64, u64, f64, f64) {
        match *self {
            SimEvent::Admitted {
                at,
                id,
                cost,
                weight,
            } => (1, at, id, cost, weight),
            SimEvent::Enqueued {
                at,
                id,
                cost,
                weight,
            } => (2, at, id, cost, weight),
            SimEvent::Departed { at, id, kind } => {
                let k = match kind {
                    FinishKind::Completed => 0.0,
                    FinishKind::Aborted => 1.0,
                    FinishKind::Failed => 2.0,
                    FinishKind::Rejected => 3.0,
                };
                (3, at, id, k, 0.0)
            }
            SimEvent::Blocked { at, id } => (4, at, id, 0.0, 0.0),
            SimEvent::Resumed { at, id } => (5, at, id, 0.0, 0.0),
            SimEvent::CostRefined { at, id, remaining } => (6, at, id, remaining, 0.0),
            SimEvent::RateChanged { at, rate } => (7, at, 0, rate, 0.0),
        }
    }

    /// Rebuild an event from its [`SimEvent::to_tap`] quintuple. Returns
    /// `None` for an unknown tag or an unrepresentable payload (so
    /// journal replay can skip — not panic on — hand-crafted records).
    pub fn from_tap(tag: u8, at: f64, id: u64, a: f64, b: f64) -> Option<SimEvent> {
        Some(match tag {
            1 => SimEvent::Admitted {
                at,
                id,
                cost: a,
                weight: b,
            },
            2 => SimEvent::Enqueued {
                at,
                id,
                cost: a,
                weight: b,
            },
            3 => {
                let kind = match a as u8 {
                    0 => FinishKind::Completed,
                    1 => FinishKind::Aborted,
                    2 => FinishKind::Failed,
                    3 => FinishKind::Rejected,
                    _ => return None,
                };
                SimEvent::Departed { at, id, kind }
            }
            4 => SimEvent::Blocked { at, id },
            5 => SimEvent::Resumed { at, id },
            6 => SimEvent::CostRefined {
                at,
                id,
                remaining: a,
            },
            7 => SimEvent::RateChanged { at, rate: a },
            _ => return None,
        })
    }
}

/// What [`System::step`] does when a job's `run` fails mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Propagate the error out of `step` (historical behavior; the whole
    /// simulation stops).
    #[default]
    Propagate,
    /// Record the failing query as [`FinishKind::Failed`], keep everyone
    /// else running, and (when a fault plan is installed) resubmit the
    /// victim per the plan's retry policy.
    Isolate,
}

/// One fault the injector actually applied (victimless events that found no
/// eligible target are counted in [`FaultStats`] but not logged here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectedFault {
    /// Virtual time of application.
    pub at: f64,
    /// The fault applied.
    pub kind: FaultKind,
    /// The query it hit, for targeted kinds.
    pub victim: Option<QueryId>,
}

/// Counters kept by the fault injector.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultStats {
    /// Faults applied, of any kind.
    pub injected: u64,
    /// Cost-noise events applied.
    pub cost_noise: u64,
    /// Rate dips applied.
    pub rate_dips: u64,
    /// Abort-with-retry events applied.
    pub aborts: u64,
    /// Arrival bursts applied.
    pub bursts: u64,
    /// Page faults armed.
    pub page_faults: u64,
    /// Retry resubmissions scheduled (after aborts or failures).
    pub retries_scheduled: u64,
    /// Retry chains that ran out of attempts.
    pub retries_exhausted: u64,
    /// Queries recorded as [`FinishKind::Failed`].
    pub failures: u64,
    /// Queries shed by a bounded admission queue.
    pub rejected: u64,
    /// Scheduled fault events skipped because no eligible victim was
    /// running (or the victim's job does not support the fault).
    pub skipped: u64,
}

/// Injector state while a [`FaultPlan`] is installed. Retry attempt counts
/// live in the session slab's `attempt` column, not here.
struct FaultState {
    plan: FaultPlan,
    next_event: usize,
    rng: Rng,
    /// Current multiplier on the aggregate rate (1.0 = no dip active).
    rate_factor: f64,
    /// When the active dip expires (+∞ when none).
    rate_restore_at: f64,
    log: Vec<InjectedFault>,
    stats: FaultStats,
}

/// The simulated multi-query RDBMS.
pub struct System {
    cfg: SystemConfig,
    clock: f64,
    /// All session state, columnar; the collections below hold slots.
    slab: SessionSlab,
    /// Name symbols for the slab's `name` column.
    names: Interner,
    running: Vec<JobSlot>,
    queue: VecDeque<JobSlot>,
    /// Future arrivals, earliest first (keyed by `(at, id)`).
    scheduled: CalendarQueue<JobSlot>,
    finished: Vec<FinishedQuery>,
    /// Dense id → index into `finished` (`u32::MAX` = still live). Ids are
    /// assigned sequentially from 1, so the map is a plain vector.
    finished_of: Vec<u32>,
    next_id: QueryId,
    faults: Option<FaultState>,
    error_policy: ErrorPolicy,
    /// Total work units actually executed by jobs (conservation ledger).
    executed_units: f64,
    /// Queries shed by a bounded admission queue.
    rejected: u64,
    /// Observability handle (disabled by default). Emission is read-only
    /// with respect to scheduler state, so enabling tracing never changes
    /// any computed result.
    obs: Obs,
    /// Delta-event feed for incremental predictors: `None` while disabled
    /// (one branch per emission site, like `obs`), `Some` buffers events
    /// until [`System::drain_events`].
    event_feed: Option<Vec<SimEvent>>,
    /// Scratch: completions collected during the current step. Owned by
    /// the system so the steady-state step path never allocates.
    scratch_done: Vec<QueryId>,
    /// Scratch: ids whose jobs errored during the current step.
    scratch_failed: Vec<QueryId>,
    /// Scratch: positions (into `running`) of sessions that finished during
    /// the current step, recorded in ascending order by the fused pass.
    scratch_finish: Vec<u32>,
}

impl System {
    /// Create a system. Panics on an invalid configuration; use
    /// [`System::try_new`] where graceful handling is needed.
    pub fn new(cfg: SystemConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(sys) => sys,
            Err(e) => panic!("invalid system configuration: {e}"),
        }
    }

    /// Create a system, rejecting invalid configurations as errors.
    pub fn try_new(cfg: SystemConfig) -> Result<Self> {
        if !(cfg.rate > 0.0 && cfg.rate.is_finite()) {
            return Err(EngineError::exec("system rate must be positive and finite"));
        }
        if !(cfg.quantum_units > 0.0 && cfg.quantum_units.is_finite()) {
            return Err(EngineError::exec("quantum must be positive and finite"));
        }
        if !(cfg.speed_tau > 0.0 && cfg.speed_tau.is_finite()) {
            return Err(EngineError::exec(
                "speed monitor time constant must be positive and finite",
            ));
        }
        Ok(System {
            cfg,
            clock: 0.0,
            slab: SessionSlab::new(),
            names: Interner::new(),
            running: Vec::new(),
            queue: VecDeque::new(),
            scheduled: CalendarQueue::new(),
            finished: Vec::new(),
            finished_of: Vec::new(),
            next_id: 1,
            faults: None,
            error_policy: ErrorPolicy::Propagate,
            executed_units: 0.0,
            rejected: 0,
            obs: Obs::disabled(),
            event_feed: None,
            scratch_done: Vec::new(),
            scratch_failed: Vec::new(),
            scratch_finish: Vec::new(),
        })
    }

    /// Install an observability handle: the scheduler then emits trace
    /// events (arrival, admit, stage boundary, abort, retry, finish,
    /// fault-injected), keeps counters/gauges/histograms, and profiles
    /// [`System::step`] in work units. The default disabled handle costs
    /// one branch per emission site.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The installed observability handle (disabled by default).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Start publishing scheduler state changes as [`SimEvent`]s. Events
    /// buffer until [`System::drain_events`]; the feed is disabled by
    /// default and costs one branch per emission site while off.
    pub fn enable_event_feed(&mut self) {
        if self.event_feed.is_none() {
            self.event_feed = Some(Vec::new());
        }
    }

    /// Whether the delta-event feed is on.
    pub fn event_feed_enabled(&self) -> bool {
        self.event_feed.is_some()
    }

    /// Stop publishing and drop any undrained events.
    pub fn disable_event_feed(&mut self) {
        self.event_feed = None;
    }

    /// Move all buffered events (in application order) into `out`. The
    /// internal buffer keeps its capacity, so a steady drain loop does not
    /// allocate. No-op while the feed is disabled.
    pub fn drain_events(&mut self, out: &mut Vec<SimEvent>) {
        if let Some(feed) = &mut self.event_feed {
            out.append(feed);
        }
    }

    #[inline]
    fn emit_event(&mut self, ev: SimEvent) {
        if let Some(feed) = &mut self.event_feed {
            feed.push(ev);
        }
    }

    /// Fresh speed monitor for a session starting now.
    ///
    /// invariant: `speed_tau` was validated positive and finite in
    /// [`System::try_new`], so the constructor cannot fail here.
    fn new_monitor(&self) -> SpeedMonitor {
        match SpeedMonitor::new_at(self.cfg.speed_tau, self.clock) {
            Ok(m) => m,
            Err(_) => unreachable!("speed_tau validated at construction"),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Aggregate processing rate `C`.
    pub fn rate(&self) -> f64 {
        self.cfg.rate
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn occupied_slots(&self) -> usize {
        self.running.len()
    }

    /// Submit a query now; starts immediately or queues per the admission
    /// policy.
    pub fn submit(&mut self, name: impl Into<Arc<str>>, job: Box<dyn Job>, weight: f64) -> QueryId {
        assert!(weight > 0.0, "scheduling weight must be positive");
        let id = self.next_id;
        self.next_id += 1;
        let sym = self.names.intern(name.into());
        let monitor = self.new_monitor();
        let h = self.slab.alloc(
            id,
            sym,
            JobState::from_box(job),
            weight,
            self.clock,
            monitor,
            0,
        );
        self.place(h);
        id
    }

    /// Schedule a query to arrive at virtual time `at` (≥ now).
    pub fn schedule(
        &mut self,
        at: f64,
        name: impl Into<Arc<str>>,
        job: Box<dyn Job>,
        weight: f64,
    ) -> QueryId {
        assert!(weight > 0.0, "scheduling weight must be positive");
        self.schedule_state(at, name.into(), JobState::from_box(job), weight, 0)
    }

    /// Allocate a slab row for a future arrival and enter it in the
    /// calendar. The monitor is a placeholder: [`System::process_due_arrivals`]
    /// installs a fresh one at pop time, exactly like the old core created
    /// the session at pop time.
    fn schedule_state(
        &mut self,
        at: f64,
        name: Arc<str>,
        job: JobState,
        weight: f64,
        attempt: u32,
    ) -> QueryId {
        let id = self.next_id;
        self.next_id += 1;
        let at = at.max(self.clock);
        let sym = self.names.intern(name);
        let monitor = self.new_monitor();
        let h = self.slab.alloc(id, sym, job, weight, at, monitor, attempt);
        self.scheduled.push(at, id, h);
        id
    }

    fn place(&mut self, h: JobSlot) {
        let i = self.slab.at(h);
        if self.obs.is_enabled() {
            self.obs.emit(
                self.clock,
                TraceKind::Arrival {
                    id: self.slab.id[i],
                    name: Arc::clone(self.names.resolve(self.slab.name[i])),
                    cost: self.slab.job[i].progress().remaining,
                },
            );
            self.obs.counter_add("sim.arrivals", 1);
        }
        if self.cfg.admission.admits(self.occupied_slots()) {
            self.slab.started[i] = Some(self.clock);
            self.slab.monitor[i] = self.new_monitor();
            if self.obs.is_enabled() {
                self.obs.emit(
                    self.clock,
                    TraceKind::Admit {
                        id: self.slab.id[i],
                        waited: 0.0,
                    },
                );
                self.obs.counter_add("sim.admitted", 1);
            }
            self.running.push(h);
            if self.event_feed.is_some() {
                let cost = self.slab.job[i].progress().remaining * self.slab.report_scale[i];
                self.emit_event(SimEvent::Admitted {
                    at: self.clock,
                    id: self.slab.id[i],
                    cost,
                    weight: self.slab.weight[i],
                });
            }
        } else if self.cfg.admission.queue_accepts(self.queue.len()) {
            if self.obs.is_enabled() {
                self.obs.emit(
                    self.clock,
                    TraceKind::Enqueue {
                        id: self.slab.id[i],
                        depth: self.queue.len() + 1,
                    },
                );
                self.obs.counter_add("sim.enqueued", 1);
            }
            self.queue.push_back(h);
            if self.event_feed.is_some() {
                let cost = self.slab.job[i].progress().remaining * self.slab.report_scale[i];
                self.emit_event(SimEvent::Enqueued {
                    at: self.clock,
                    id: self.slab.id[i],
                    cost,
                    weight: self.slab.weight[i],
                });
            }
        } else {
            // Load shedding: the bounded admission queue is full. The query
            // leaves immediately with a well-defined zero-progress record.
            // (`fault_stats` mirrors this counter into `FaultStats::rejected`.)
            self.rejected += 1;
            if self.obs.is_enabled() {
                self.obs.emit(
                    self.clock,
                    TraceKind::Reject {
                        id: self.slab.id[i],
                    },
                );
                self.obs.counter_add("sim.rejected", 1);
            }
            let est = self.slab.job[i].progress().remaining;
            let rec = FinishedQuery {
                id: self.slab.id[i],
                name: Arc::clone(self.names.resolve(self.slab.name[i])),
                weight: self.slab.weight[i],
                arrived: self.slab.arrived[i],
                started: None,
                finished: self.clock,
                kind: FinishKind::Rejected,
                units_done: 0.0,
                remaining_at_end: est,
                rollback_units: 0.0,
            };
            self.slab.free(h);
            self.record_finished(rec);
        }
    }

    fn process_due_arrivals(&mut self) {
        while let Some((at, _)) = self.scheduled.peek() {
            if at > self.clock {
                break;
            }
            // invariant: peek just returned Some, so pop cannot fail.
            let Some(e) = self.scheduled.pop() else {
                break;
            };
            let h = e.payload;
            let i = self.slab.at(h);
            self.slab.monitor[i] = self.new_monitor();
            self.place(h);
        }
    }

    fn admit_from_queue(&mut self) {
        while !self.queue.is_empty() && self.cfg.admission.admits(self.occupied_slots()) {
            // invariant: the loop condition guarantees the queue is non-empty.
            let Some(h) = self.queue.pop_front() else {
                break;
            };
            let i = self.slab.at(h);
            self.slab.started[i] = Some(self.clock);
            self.slab.monitor[i] = self.new_monitor();
            if self.obs.is_enabled() {
                self.obs.emit(
                    self.clock,
                    TraceKind::Admit {
                        id: self.slab.id[i],
                        waited: self.clock - self.slab.arrived[i],
                    },
                );
                self.obs.counter_add("sim.admitted", 1);
            }
            self.running.push(h);
            if self.event_feed.is_some() {
                let cost = self.slab.job[i].progress().remaining * self.slab.report_scale[i];
                self.emit_event(SimEvent::Admitted {
                    at: self.clock,
                    id: self.slab.id[i],
                    cost,
                    weight: self.slab.weight[i],
                });
            }
        }
    }

    /// Whether any work, future arrivals, or pending fault events remain
    /// (a scheduled burst can create work on an otherwise idle system).
    pub fn has_work(&self) -> bool {
        !self.running.is_empty()
            || !self.queue.is_empty()
            || !self.scheduled.is_empty()
            || self
                .faults
                .as_ref()
                .is_some_and(|fs| fs.next_event < fs.plan.events().len())
    }

    fn next_arrival_at(&self) -> Option<f64> {
        self.scheduled.next_at()
    }

    /// Remove `running[pos]`, record its terminal [`FinishedQuery`]
    /// (completed, or aborted when the rollback job just drained), and
    /// queue its id in `scratch_done`.
    fn finish_at(&mut self, pos: usize) {
        let h = self.running.remove(pos);
        let si = h.idx as usize;
        self.scratch_done.push(self.slab.id[si]);
        // A rollback completion reports the *query's* progress at abort
        // time, not the rollback job's counters; the rollback work itself
        // is attributed to `rollback_units`.
        let (kind, units_done, remaining_at_end, rollback_units) = match self.slab.rolling_back[si]
        {
            Some((done, remaining)) => (
                FinishKind::Aborted,
                done,
                remaining,
                self.slab.units_done[si] - done,
            ),
            None => (FinishKind::Completed, self.slab.units_done[si], 0.0, 0.0),
        };
        let rec = FinishedQuery {
            id: self.slab.id[si],
            name: Arc::clone(self.names.resolve(self.slab.name[si])),
            weight: self.slab.weight[si],
            arrived: self.slab.arrived[si],
            started: self.slab.started[si],
            finished: self.clock,
            kind,
            units_done,
            remaining_at_end,
            rollback_units,
        };
        self.slab.free(h);
        self.record_finished(rec);
    }

    fn record_finished(&mut self, rec: FinishedQuery) {
        if self.obs.is_enabled() {
            self.obs.emit(
                self.clock,
                TraceKind::Finish {
                    id: rec.id,
                    kind: rec.kind.label(),
                    units: rec.units_done,
                },
            );
            let counter = match rec.kind {
                FinishKind::Completed => "sim.finished.completed",
                FinishKind::Aborted => "sim.finished.aborted",
                FinishKind::Failed => "sim.finished.failed",
                FinishKind::Rejected => "sim.finished.rejected",
            };
            self.obs.counter_add(counter, 1);
            self.obs
                .histogram_observe("sim.query.units_done", UNIT_BUCKETS, rec.units_done);
            self.obs.histogram_observe(
                "sim.query.latency",
                SECOND_BUCKETS,
                rec.finished - rec.arrived,
            );
        }
        self.emit_event(SimEvent::Departed {
            at: rec.finished,
            id: rec.id,
            kind: rec.kind,
        });
        let slot = rec.id as usize;
        if self.finished_of.len() <= slot {
            self.finished_of.resize(slot + 1, u32::MAX);
        }
        // A Vec<FinishedQuery> outgrows memory long before u32 wraps.
        self.finished_of[slot] = self.finished.len() as u32;
        self.finished.push(rec);
    }

    /// Install a fault plan. Events strictly in the past are applied on the
    /// next step; the injector replays the plan at exact virtual times.
    pub fn install_faults(&mut self, plan: FaultPlan) {
        // Separate stream from `FaultPlan::generate`'s so injection draws
        // don't depend on how the plan was built.
        let rng = Rng::seed_from_u64(plan.seed ^ 0xD6E8_FEB8_6659_FD93);
        self.faults = Some(FaultState {
            plan,
            next_event: 0,
            rng,
            rate_factor: 1.0,
            rate_restore_at: f64::INFINITY,
            log: Vec::new(),
            stats: FaultStats::default(),
        });
    }

    /// Set what `step` does when a job's `run` fails mid-flight.
    pub fn set_error_policy(&mut self, policy: ErrorPolicy) {
        self.error_policy = policy;
    }

    /// Injector counters, when a fault plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|fs| FaultStats {
            rejected: self.rejected,
            ..fs.stats
        })
    }

    /// Faults applied so far (empty when no plan is installed).
    pub fn fault_log(&self) -> &[InjectedFault] {
        self.faults.as_ref().map_or(&[], |fs| fs.log.as_slice())
    }

    /// Total work units actually executed by all jobs so far. Conservation:
    /// this always equals `Σ units_done` over live sessions plus
    /// `Σ (units_done + rollback_units)` over finished records.
    pub fn executed_units(&self) -> f64 {
        self.executed_units
    }

    /// `Σ units_done` over live (running and queued) sessions.
    pub fn live_units_done(&self) -> f64 {
        self.running
            .iter()
            .chain(self.queue.iter())
            .map(|&h| self.slab.units_done[h.idx as usize])
            .sum()
    }

    /// Queries shed by a bounded admission queue so far.
    pub fn rejected_count(&self) -> u64 {
        self.rejected
    }

    /// The aggregate rate currently in effect (nominal rate times any
    /// active dip). Snapshots keep reporting the nominal rate: progress
    /// indicators are not supposed to see Assumption 1 being violated.
    pub fn current_rate(&self) -> f64 {
        self.cfg.rate * self.faults.as_ref().map_or(1.0, |fs| fs.rate_factor)
    }

    /// The next instant at which injector state changes (fault event or
    /// dip expiry), if any — a step must not integrate across it.
    fn next_fault_boundary(&self) -> Option<f64> {
        let fs = self.faults.as_ref()?;
        let mut at = fs.rate_restore_at;
        if let Some(ev) = fs.plan.events().get(fs.next_event) {
            at = at.min(ev.at);
        }
        at.is_finite().then_some(at)
    }

    /// Pick a running, not-rolling-back victim deterministically.
    fn pick_victim(&self, rng: &mut Rng) -> Option<usize> {
        let eligible: Vec<usize> = self
            .running
            .iter()
            .enumerate()
            .filter(|(_, h)| self.slab.rolling_back[h.idx as usize].is_none())
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            None
        } else {
            Some(eligible[rng.below(eligible.len() as u64) as usize])
        }
    }

    /// Resubmit a fresh copy of an aborted/failed query through the
    /// admission queue with capped exponential backoff, if the retry
    /// budget allows and the job supports restarting.
    fn schedule_retry(
        &mut self,
        fs: &mut FaultState,
        prior_id: QueryId,
        prior_attempt: u32,
        name: &Arc<str>,
        weight: f64,
        fresh: Option<JobState>,
    ) {
        let Some(job) = fresh else {
            fs.stats.retries_exhausted += 1;
            return;
        };
        let attempt = prior_attempt + 1;
        match fs.plan.retry.delay_for(attempt) {
            Some(delay) => {
                // Strip any earlier retry suffix so names stay readable.
                let base = match name.find("#r") {
                    Some(i) => &name[..i],
                    None => name.as_ref(),
                };
                let due = self.clock + delay;
                let id = self.schedule_state(
                    due,
                    format!("{base}#r{attempt}").into(),
                    job,
                    weight,
                    attempt,
                );
                fs.stats.retries_scheduled += 1;
                if self.obs.is_enabled() {
                    self.obs.emit(
                        self.clock,
                        TraceKind::Retry {
                            prior: prior_id,
                            id,
                            attempt,
                            due,
                        },
                    );
                    self.obs.counter_add("sim.retries", 1);
                }
            }
            None => fs.stats.retries_exhausted += 1,
        }
    }

    /// Apply every fault event due at or before the current clock, and
    /// expire any finished rate dip.
    fn apply_due_faults(&mut self) {
        let Some(mut fs) = self.faults.take() else {
            return;
        };
        if self.clock >= fs.rate_restore_at {
            fs.rate_factor = 1.0;
            fs.rate_restore_at = f64::INFINITY;
            self.emit_event(SimEvent::RateChanged {
                at: self.clock,
                rate: self.cfg.rate,
            });
        }
        while let Some(ev) = fs.plan.events().get(fs.next_event).copied() {
            if ev.at > self.clock {
                break;
            }
            fs.next_event += 1;
            self.apply_fault(&mut fs, ev.kind);
        }
        self.faults = Some(fs);
    }

    fn apply_fault(&mut self, fs: &mut FaultState, kind: FaultKind) {
        let mut log_victim = None;
        match kind {
            FaultKind::CostNoise { factor } => {
                let Some(i) = self.pick_victim(&mut fs.rng) else {
                    fs.stats.skipped += 1;
                    return;
                };
                let si = self.running[i].idx as usize;
                self.slab.report_scale[si] *= factor;
                log_victim = Some(self.slab.id[si]);
                fs.stats.cost_noise += 1;
                if self.event_feed.is_some() {
                    let remaining =
                        self.slab.job[si].progress().remaining * self.slab.report_scale[si];
                    self.emit_event(SimEvent::CostRefined {
                        at: self.clock,
                        id: self.slab.id[si],
                        remaining,
                    });
                }
            }
            FaultKind::RateDip { factor, duration } => {
                fs.rate_factor = factor.clamp(1e-6, 1.0);
                fs.rate_restore_at = self.clock + duration.max(0.0);
                fs.stats.rate_dips += 1;
                self.emit_event(SimEvent::RateChanged {
                    at: self.clock,
                    rate: self.cfg.rate * fs.rate_factor,
                });
            }
            FaultKind::AbortRetry { overhead } => {
                let Some(i) = self.pick_victim(&mut fs.rng) else {
                    fs.stats.skipped += 1;
                    return;
                };
                let si = self.running[i].idx as usize;
                let (id, weight) = (self.slab.id[si], self.slab.weight[si]);
                let name = Arc::clone(self.names.resolve(self.slab.name[si]));
                let prior_attempt = self.slab.attempt[si];
                // Capture the restart copy before the abort replaces the
                // victim's job with a rollback job.
                let fresh = self.slab.job[si].restart();
                // invariant: the victim index came from `running` just above.
                if self.abort_with_overhead(id, overhead).is_err() {
                    fs.stats.skipped += 1;
                    return;
                }
                self.schedule_retry(fs, id, prior_attempt, &name, weight, fresh);
                log_victim = Some(id);
                fs.stats.aborts += 1;
            }
            FaultKind::Burst { queries, cost } => {
                for b in 0..queries {
                    let name = format!("burst@{:.3}#{b}", self.clock);
                    self.submit(name, Box::new(crate::job::SyntheticJob::new(cost)), 1.0);
                }
                fs.stats.bursts += 1;
            }
            FaultKind::PageFault => {
                let Some(i) = self.pick_victim(&mut fs.rng) else {
                    fs.stats.skipped += 1;
                    return;
                };
                let si = self.running[i].idx as usize;
                if !self.slab.job[si].inject_failure() {
                    fs.stats.skipped += 1;
                    return;
                }
                log_victim = Some(self.slab.id[si]);
                fs.stats.page_faults += 1;
            }
        }
        fs.stats.injected += 1;
        if self.obs.is_enabled() {
            self.obs.emit(
                self.clock,
                TraceKind::FaultInjected {
                    kind: kind.label(),
                    victim: log_victim,
                },
            );
            self.obs.counter_add("sim.faults.injected", 1);
        }
        fs.log.push(InjectedFault {
            at: self.clock,
            kind,
            victim: log_victim,
        });
    }

    /// Time until the next completion event, valid when every unblocked
    /// running job reports [`Job::exact_remaining`]; `None` falls the step
    /// back to the quantum path.
    fn event_jump(&self, effective: f64, total_weight: f64) -> Option<f64> {
        let mut dt = f64::INFINITY;
        for &h in &self.running {
            let i = h.idx as usize;
            if self.slab.blocked[i] {
                continue;
            }
            let remaining = self.slab.job[i].exact_remaining()?;
            let need = (remaining - self.slab.credit[i]).max(0.0);
            let speed = effective * self.slab.weight[i] / total_weight;
            dt = dt.min(need / speed);
        }
        if !dt.is_finite() {
            return None;
        }
        // Nudge past the exact completion instant so the integer floor of
        // the finisher's credit still covers its last unit of work.
        Some(dt * (1.0 + 1e-9) + 1e-12)
    }

    /// [`System::event_jump`] when every unblocked weight is exactly 1.0.
    /// All sessions then share one speed: `effective * 1.0 / total_weight`
    /// is bit-identical to `effective / total_weight` (multiplying by 1.0
    /// is exact). IEEE division by a positive constant is monotone, so
    /// `min_i(need_i / speed)` equals `min_i(need_i) / speed` bit-for-bit
    /// — one division per step instead of two per session.
    fn event_jump_uniform(&self, effective: f64, total_weight: f64) -> Option<f64> {
        let mut need_min = f64::INFINITY;
        for &h in &self.running {
            let i = h.idx as usize;
            if self.slab.blocked[i] {
                continue;
            }
            let remaining = self.slab.job[i].exact_remaining()?;
            need_min = need_min.min((remaining - self.slab.credit[i]).max(0.0));
        }
        let dt = need_min / (effective / total_weight);
        if !dt.is_finite() {
            return None;
        }
        Some(dt * (1.0 + 1e-9) + 1e-12)
    }

    /// Advance one step (a quantum, or an event jump in
    /// [`StepMode::EventDriven`]). Returns ids of queries that completed
    /// during this step.
    pub fn step(&mut self) -> Result<Vec<QueryId>> {
        self.step_bounded(f64::INFINITY)?;
        Ok(std::mem::take(&mut self.scratch_done))
    }

    /// Advance one step without surrendering the completion buffer: the
    /// ids of queries that completed stay readable via
    /// [`System::last_completed`] until the next step. Unlike
    /// [`System::step`] — whose returned `Vec` forces a fresh allocation
    /// on every step that completes something — this never allocates in
    /// steady state, so tight drive loops that only count completions
    /// (benchmarks, progress replay) should prefer it.
    pub fn step_discard(&mut self) -> Result<usize> {
        self.step_bounded(f64::INFINITY)?;
        Ok(self.scratch_done.len())
    }

    /// Ids of queries that completed during the most recent
    /// [`System::step_discard`] call (empty after a plain `step`, which
    /// moves the buffer to its caller).
    pub fn last_completed(&self) -> &[QueryId] {
        &self.scratch_done
    }

    /// Like [`System::step`], but never advances the clock past `limit` —
    /// event jumps and quanta alike are clipped to the boundary, so callers
    /// can sample the system at exact instants.
    pub fn step_until(&mut self, limit: f64) -> Result<Vec<QueryId>> {
        self.step_bounded(limit)?;
        Ok(std::mem::take(&mut self.scratch_done))
    }

    /// One scheduler step. Steady state (work granted, nobody finishes,
    /// no obs) touches only slab columns and the scratch buffers — no heap
    /// allocation; `crates/sim/tests/alloc_free.rs` pins that down with a
    /// counting allocator.
    fn step_bounded(&mut self, limit: f64) -> Result<()> {
        self.scratch_done.clear();
        self.scratch_failed.clear();
        self.scratch_finish.clear();
        if limit <= self.clock {
            return Ok(());
        }
        // Snapshot composition and the work ledger so the tail of the step
        // can emit a stage-boundary event and a profiling sample. Plain
        // field reads — free enough to take even with tracing disabled.
        let comp_before = (self.running.len(), self.queue.len(), self.finished.len());
        let units_before = self.executed_units;
        self.process_due_arrivals();
        self.apply_due_faults();
        // Idle fast-forward to the next wake-up — an arrival or a fault
        // boundary (a burst creates work out of nothing) — never past
        // `limit`.
        if self.running.is_empty() && self.queue.is_empty() {
            let wake = match (self.next_arrival_at(), self.next_fault_boundary()) {
                (Some(a), Some(f)) => Some(a.min(f)),
                (a, f) => a.or(f),
            };
            match wake {
                Some(at) if at < limit => {
                    self.clock = at.max(self.clock);
                    self.process_due_arrivals();
                    self.apply_due_faults();
                    if self.running.is_empty() && self.queue.is_empty() {
                        // The wake-up produced no work (e.g. a victimless
                        // fault event); let the caller step again.
                        return Ok(());
                    }
                }
                Some(_) => {
                    // Next event is beyond the boundary: pin to it.
                    self.clock = limit;
                    return Ok(());
                }
                None => return Ok(()),
            }
        }

        // The clock all running monitors were last updated at; after the
        // advance below, `clock - t_prev` is shared by every monitor, so
        // the EMA smoothing factor is computed once (see
        // `SpeedMonitor::update_with_alpha`).
        let t_prev = self.clock;
        // One fused pass over the weight/blocked columns; the f64 sum
        // accumulates in running order exactly like the old two-pass code.
        // `unit_w` tracks whether every unblocked weight is exactly 1.0,
        // which unlocks the shared-divisor fast paths below; those paths
        // produce bit-identical values (see `event_jump_uniform`).
        let mut active = 0usize;
        let mut total_weight = 0.0f64;
        let mut unit_w = true;
        for &h in &self.running {
            let i = h.idx as usize;
            if !self.slab.blocked[i] {
                active += 1;
                let w = self.slab.weight[i];
                unit_w &= w == 1.0;
                total_weight += w;
            }
        }
        let effective = self
            .cfg
            .rate_model
            .effective_rate(self.current_rate(), active);

        let mut dt = self.cfg.quantum_units / self.cfg.rate;
        if self.cfg.step_mode == StepMode::EventDriven && total_weight > 0.0 {
            let jump = if unit_w {
                self.event_jump_uniform(effective, total_weight)
            } else {
                self.event_jump(effective, total_weight)
            };
            if let Some(jump) = jump {
                dt = jump;
            }
        }
        if let Some(at) = self.next_arrival_at() {
            if at > self.clock {
                dt = dt.min(at - self.clock);
            }
        }
        // Never integrate across a fault event or a dip expiry: the rate in
        // effect must be piecewise-constant within a step.
        if let Some(at) = self.next_fault_boundary() {
            if at > self.clock {
                dt = dt.min(at - self.clock);
            }
        }
        let mut pinned = false;
        if limit.is_finite() && self.clock + dt >= limit {
            dt = limit - self.clock;
            pinned = true;
        }

        // Compute the post-step instant up front (`clock` itself is only
        // committed once the pass below succeeds, so a propagated job error
        // still leaves the clock un-advanced like the historical multi-pass
        // order). Knowing `t_new` early lets the work grant, the speed
        // monitor update and the finish check run as ONE pass over the
        // running set instead of three: every value is identical to the
        // multi-pass order because each session's dataflow is independent —
        // its monitor reads only its own (already granted) `units_done`
        // plus the shared `t_new`/`mdt`/`alpha`.
        let t_new = if pinned {
            // Land exactly on the boundary despite floating-point rounding.
            limit
        } else {
            self.clock + dt
        };
        let mdt = t_new - t_prev;
        let tau = self.cfg.speed_tau;
        // Hoisted smoothing factor: one exp() per step, not per session.
        // A monitor not in lockstep falls back to the full update inside
        // `update_with_alpha`; skipping the updates when the clock did not
        // advance matches `update()`'s early return for every monitor.
        let alpha = if mdt > 0.0 {
            1.0 - (-mdt / tau).exp()
        } else {
            0.0
        };
        let do_grant = total_weight > 0.0;
        let grant = effective * dt;
        // With every weight bit-equal to 1.0, `grant * w / total_weight` is
        // `grant / total_weight` for every session (multiplying by 1.0 is
        // exact), so the division hoists out of the loop.
        let grant_each = if do_grant && unit_w {
            grant / total_weight
        } else {
            0.0
        };
        for k in 0..self.running.len() {
            let i = self.running[k].idx as usize;
            if do_grant && !self.slab.blocked[i] {
                self.slab.credit[i] += if unit_w {
                    grant_each
                } else {
                    grant * self.slab.weight[i] / total_weight
                };
                let budget = self.slab.credit[i].floor();
                if budget >= 1.0 {
                    match self.slab.job[i].run(budget as u64) {
                        Ok(used) => {
                            self.slab.credit[i] -= used as f64;
                            self.slab.units_done[i] += used as f64;
                            self.executed_units += used as f64;
                        }
                        Err(e) => match self.error_policy {
                            ErrorPolicy::Propagate => return Err(e),
                            ErrorPolicy::Isolate => self.scratch_failed.push(self.slab.id[i]),
                        },
                    }
                }
            }
            if mdt > 0.0 {
                let done = self.slab.units_done[i];
                self.slab.monitor[i].update_with_alpha(t_new, done, mdt, tau, alpha);
            }
            if self.slab.job[i].finished() {
                self.scratch_finish.push(k as u32);
            }
        }
        self.clock = t_new;

        // Remove sessions whose jobs errored (graceful isolation): they
        // leave as `Failed` with their progress preserved, and — when a
        // fault plan is installed — are resubmitted per the retry policy.
        let any_failed = !self.scratch_failed.is_empty();
        for fi in 0..self.scratch_failed.len() {
            let id = self.scratch_failed[fi];
            let Some(pos) = self
                .running
                .iter()
                .position(|&h| self.slab.id[h.idx as usize] == id)
            else {
                continue;
            };
            let h = self.running.remove(pos);
            let i = self.slab.at(h);
            let (units_done, remaining_at_end, rollback_units) = match self.slab.rolling_back[i] {
                Some((done, rem)) => (done, rem, self.slab.units_done[i] - done),
                None => (
                    self.slab.units_done[i],
                    self.slab.job[i].progress().remaining,
                    0.0,
                ),
            };
            let name = Arc::clone(self.names.resolve(self.slab.name[i]));
            let weight = self.slab.weight[i];
            let mut faults = self.faults.take();
            if let Some(fs) = &mut faults {
                fs.stats.failures += 1;
                let fresh = self.slab.job[i].restart();
                let prior_attempt = self.slab.attempt[i];
                self.schedule_retry(fs, id, prior_attempt, &name, weight, fresh);
            }
            self.faults = faults;
            self.scratch_done.push(id);
            let rec = FinishedQuery {
                id,
                name,
                weight,
                arrived: self.slab.arrived[i],
                started: self.slab.started[i],
                finished: self.clock,
                kind: FinishKind::Failed,
                units_done,
                remaining_at_end,
                rollback_units,
            };
            self.slab.free(h);
            self.record_finished(rec);
        }

        // Collect finishers. The fused pass recorded their positions in
        // `scratch_finish` (ascending running order); if the failure path
        // above removed sessions those positions are stale, so rescan —
        // identical result, just slower on that rare path.
        if any_failed {
            self.scratch_finish.clear();
            let mut i = 0;
            while i < self.running.len() {
                let si = self.running[i].idx as usize;
                if self.slab.job[si].finished() {
                    self.finish_at(i);
                } else {
                    i += 1;
                }
            }
        } else {
            for fi in 0..self.scratch_finish.len() {
                // Positions were recorded ascending, so each earlier
                // removal shifts the remaining ones left by exactly one.
                let pos = self.scratch_finish[fi] as usize - fi;
                self.finish_at(pos);
            }
            self.scratch_finish.clear();
        }
        if !self.scratch_done.is_empty() || any_failed {
            self.admit_from_queue();
        }
        if self.obs.is_enabled() {
            let mut span = self.obs.span("sim.step");
            span.add_units(self.executed_units - units_before);
            drop(span);
            if comp_before != (self.running.len(), self.queue.len(), self.finished.len()) {
                self.obs.emit(
                    self.clock,
                    TraceKind::StageBoundary {
                        running: self.running.len(),
                        queued: self.queue.len(),
                    },
                );
            }
            self.obs.gauge_set("sim.running", self.running.len() as f64);
            self.obs.gauge_set("sim.queued", self.queue.len() as f64);
            self.obs.gauge_set("sim.clock", self.clock);
        }
        // Completions stay in `scratch_done`; the public wrappers either
        // hand the buffer out (`step`) or expose it in place
        // (`step_discard` + `last_completed`).
        Ok(())
    }

    /// Run until virtual time `t` (or until idle with no future arrivals).
    pub fn run_until(&mut self, t: f64) -> Result<Vec<QueryId>> {
        let mut finished = Vec::new();
        while self.clock < t && self.has_work() {
            self.step_bounded(t)?;
            finished.extend_from_slice(&self.scratch_done);
        }
        if self.clock < t && !self.has_work() {
            self.clock = t;
        }
        Ok(finished)
    }

    /// Run until no running, queued, or scheduled queries remain, or until
    /// the safety horizon `max_t` is hit. Returns all completions.
    pub fn run_until_idle(&mut self, max_t: f64) -> Result<Vec<QueryId>> {
        let mut finished = Vec::new();
        while self.has_work() && self.clock < max_t {
            self.step_bounded(max_t)?;
            finished.extend_from_slice(&self.scratch_done);
        }
        Ok(finished)
    }

    /// Block a running query: it keeps its slot but receives no more work
    /// (the paper's single-/multiple-query speed-up victim action).
    pub fn block(&mut self, id: QueryId) -> Result<()> {
        match self
            .running
            .iter()
            .find(|&&h| self.slab.id[h.idx as usize] == id)
        {
            Some(&h) => {
                let i = self.slab.at(h);
                self.slab.blocked[i] = true;
                if self.obs.is_enabled() {
                    self.obs.emit(self.clock, TraceKind::Block { id });
                }
                self.emit_event(SimEvent::Blocked { at: self.clock, id });
                Ok(())
            }
            None => Err(EngineError::exec(format!("no running query {id}"))),
        }
    }

    /// Resume a blocked query.
    pub fn resume(&mut self, id: QueryId) -> Result<()> {
        match self
            .running
            .iter()
            .find(|&&h| self.slab.id[h.idx as usize] == id)
        {
            Some(&h) => {
                let i = self.slab.at(h);
                self.slab.blocked[i] = false;
                if self.obs.is_enabled() {
                    self.obs.emit(self.clock, TraceKind::Resume { id });
                }
                self.emit_event(SimEvent::Resumed { at: self.clock, id });
                Ok(())
            }
            None => Err(EngineError::exec(format!("no running query {id}"))),
        }
    }

    /// Abort a running or queued query.
    pub fn abort(&mut self, id: QueryId) -> Result<()> {
        if let Some(pos) = self
            .running
            .iter()
            .position(|&h| self.slab.id[h.idx as usize] == id)
        {
            let h = self.running.remove(pos);
            let i = self.slab.at(h);
            if self.obs.is_enabled() {
                self.obs
                    .emit(self.clock, TraceKind::Abort { id, overhead: 0 });
                self.obs.counter_add("sim.aborts", 1);
            }
            // Aborting a session that is already rolling back keeps the
            // original query's counters; the rollback work done so far is
            // attributed to `rollback_units` so no work goes missing.
            let (units_done, remaining_at_end, rollback_units) = match self.slab.rolling_back[i] {
                Some((done, rem)) => (done, rem, self.slab.units_done[i] - done),
                None => (
                    self.slab.units_done[i],
                    self.slab.job[i].progress().remaining,
                    0.0,
                ),
            };
            let rec = FinishedQuery {
                id,
                name: Arc::clone(self.names.resolve(self.slab.name[i])),
                weight: self.slab.weight[i],
                arrived: self.slab.arrived[i],
                started: self.slab.started[i],
                finished: self.clock,
                kind: FinishKind::Aborted,
                units_done,
                remaining_at_end,
                rollback_units,
            };
            self.slab.free(h);
            self.record_finished(rec);
            self.admit_from_queue();
            return Ok(());
        }
        if let Some(pos) = self
            .queue
            .iter()
            .position(|&h| self.slab.id[h.idx as usize] == id)
        {
            // invariant: `pos` came from `position` on the same queue.
            let Some(h) = self.queue.remove(pos) else {
                return Err(EngineError::exec(format!("no such query {id}")));
            };
            let i = self.slab.at(h);
            // A queued query never started and never received work: its
            // record is explicitly zero-progress (`started: None`,
            // `units_done: 0`), with the pre-execution cost estimate as the
            // remaining work it leaves behind. The next snapshot no longer
            // lists it, so queue-position estimates drop it the same tick.
            if self.obs.is_enabled() {
                self.obs
                    .emit(self.clock, TraceKind::Abort { id, overhead: 0 });
                self.obs.counter_add("sim.aborts", 1);
            }
            let est = self.slab.job[i].progress().remaining;
            let rec = FinishedQuery {
                id,
                name: Arc::clone(self.names.resolve(self.slab.name[i])),
                weight: self.slab.weight[i],
                arrived: self.slab.arrived[i],
                started: None,
                finished: self.clock,
                kind: FinishKind::Aborted,
                units_done: 0.0,
                remaining_at_end: est,
                rollback_units: 0.0,
            };
            self.slab.free(h);
            self.record_finished(rec);
            return Ok(());
        }
        Err(EngineError::exec(format!("no such query {id}")))
    }

    /// Abort a running query whose rollback costs `overhead` work units
    /// (the paper leaves non-negligible abort overhead as future work; this
    /// models it). The session keeps its slot and its weight while the
    /// rollback runs; it then leaves as [`FinishKind::Aborted`]. Zero
    /// overhead degenerates to [`System::abort`]. Queued queries abort
    /// instantly (nothing to roll back).
    pub fn abort_with_overhead(&mut self, id: QueryId, overhead: u64) -> Result<()> {
        if overhead == 0 {
            return self.abort(id);
        }
        if let Some(&h) = self
            .running
            .iter()
            .find(|&&h| self.slab.id[h.idx as usize] == id)
        {
            let i = self.slab.at(h);
            if self.slab.rolling_back[i].is_some() {
                return Err(EngineError::exec(format!(
                    "query {id} is already rolling back"
                )));
            }
            let remaining = self.slab.job[i].progress().remaining;
            self.slab.rolling_back[i] = Some((self.slab.units_done[i], remaining));
            self.slab.job[i] = JobState::Synthetic(crate::job::SyntheticJob::new(overhead));
            self.slab.blocked[i] = false;
            self.slab.credit[i] = 0.0;
            if self.obs.is_enabled() {
                self.obs.emit(self.clock, TraceKind::Abort { id, overhead });
                self.obs.counter_add("sim.aborts", 1);
            }
            // The session keeps its slot but now executes rollback work:
            // to the fluid model that is a discontinuous cost change.
            self.emit_event(SimEvent::CostRefined {
                at: self.clock,
                id,
                remaining: overhead as f64 * self.slab.report_scale[i],
            });
            return Ok(());
        }
        if self
            .queue
            .iter()
            .any(|&h| self.slab.id[h.idx as usize] == id)
        {
            return self.abort(id);
        }
        Err(EngineError::exec(format!("no such query {id}")))
    }

    /// Stop admitting scheduled arrivals (the paper's maintenance operation
    /// O1: "no new queries are allowed to enter the RDBMS"). Pending
    /// scheduled arrivals are dropped; queued queries stay queued.
    pub fn close_admission(&mut self) {
        for e in self.scheduled.sorted_entries() {
            self.slab.free(e.payload);
        }
        self.scheduled.clear();
    }

    /// Snapshot for progress indicators.
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot {
            time: self.clock,
            rate: self.cfg.rate,
            running: self
                .running
                .iter()
                .map(|&h| {
                    let i = h.idx as usize;
                    let p = self.slab.job[i].progress();
                    QueryState {
                        id: self.slab.id[i],
                        name: Arc::clone(self.names.resolve(self.slab.name[i])),
                        weight: self.slab.weight[i],
                        arrived: self.slab.arrived[i],
                        started: self.slab.started[i].unwrap_or(self.slab.arrived[i]),
                        done: p.done,
                        // Injected cost noise distorts only what PIs see.
                        remaining: p.remaining * self.slab.report_scale[i],
                        initial_estimate: p.initial_estimate,
                        observed_speed: self.slab.monitor[i].speed(),
                        blocked: self.slab.blocked[i],
                        rolling_back: self.slab.rolling_back[i].is_some(),
                    }
                })
                .collect(),
            queued: self
                .queue
                .iter()
                .map(|&h| {
                    let i = h.idx as usize;
                    QueuedState {
                        id: self.slab.id[i],
                        name: Arc::clone(self.names.resolve(self.slab.name[i])),
                        weight: self.slab.weight[i],
                        arrived: self.slab.arrived[i],
                        est_cost: self.slab.job[i].progress().remaining * self.slab.report_scale[i],
                    }
                })
                .collect(),
        }
    }

    /// Queries that have left the system so far.
    pub fn finished(&self) -> &[FinishedQuery] {
        &self.finished
    }

    /// The finished record for `id`, if it has left the system. Plain
    /// vector indexing on the dense id space — no hash map on this path.
    pub fn finished_record(&self, id: QueryId) -> Option<&FinishedQuery> {
        let fi = *self.finished_of.get(id as usize)?;
        if fi == u32::MAX {
            return None;
        }
        self.finished.get(fi as usize)
    }

    /// Ids of currently running (including blocked) queries.
    pub fn running_ids(&self) -> Vec<QueryId> {
        self.running
            .iter()
            .map(|&h| self.slab.id[h.idx as usize])
            .collect()
    }

    /// Ids of currently queued queries, front first.
    pub fn queued_ids(&self) -> Vec<QueryId> {
        self.queue
            .iter()
            .map(|&h| self.slab.id[h.idx as usize])
            .collect()
    }
}

// ---------------------------------------------------------------------------
// checkpoint/restore
// ---------------------------------------------------------------------------

/// Checkpointing serializes the *complete* simulated world — config, clock,
/// a compacted name table, every live session (job counters, GPS credit,
/// speed monitor, retry attempt), the admission queue in order, the
/// scheduled-arrival calendar in canonical `(at, id)` order, all finished
/// records, and the fault injector's plan cursor, RNG stream position,
/// active rate dip, log, and stats. Restoring and continuing is
/// bit-identical to never having stopped: every subsequent step reads
/// exactly the same state an uninterrupted run would have. (Slab slot
/// numbering and interner symbols may differ after a restore; both are
/// private and unobservable — iteration orders and pop orders are defined
/// by the collections and `(at, id)`, never by slot or symbol values.)
///
/// The name table lists each distinct live name once, in first-seen order
/// over (running, queue, scheduled); sessions reference table indices.
/// Restore re-interns the table in that order, so re-encoding a restored
/// system reproduces the same table — the encoding stays canonical.
///
/// Only the [`Obs`] handle is excluded: trace/metrics continuity is the
/// observability layer's own concern (see `mqpi_obs::Obs::checkpoint`), and
/// a restored system starts with a disabled handle until the caller
/// re-installs one via [`System::set_obs`].
impl System {
    /// Serialize the full scheduler state. Fails with
    /// [`CkptError::Unsupported`] when any live job cannot snapshot itself
    /// (engine cursors hold live operator state); synthetic workloads —
    /// everything the experiment campaigns run — always succeed.
    pub fn checkpoint(&self) -> std::result::Result<Vec<u8>, CkptError> {
        debug_assert_eq!(
            self.slab.live(),
            self.running.len() + self.queue.len() + self.scheduled.len(),
            "every live slab row is owned by exactly one collection"
        );
        let mut e = Enc::new();
        e.put_f64(self.cfg.rate);
        e.put_f64(self.cfg.quantum_units);
        ckpt::encode_admission(&mut e, self.cfg.admission);
        e.put_f64(self.cfg.speed_tau);
        ckpt::encode_rate_model(&mut e, self.cfg.rate_model);
        ckpt::encode_step_mode(&mut e, self.cfg.step_mode);
        e.put_f64(self.clock);
        e.put_u64(self.next_id);
        e.put_f64(self.executed_units);
        e.put_u64(self.rejected);
        ckpt::encode_error_policy(&mut e, self.error_policy);
        // The calendar serializes in canonical (at, id) order — the exact
        // order future pops will see, since pop order is the total order by
        // (at, id) regardless of internal bucket layout — so rebuilding by
        // pushes reproduces identical behavior.
        let sched = self.scheduled.sorted_entries();
        // Name table: first-seen order over (running, queue, scheduled).
        let mut index_of: Vec<u32> = vec![u32::MAX; self.names.len()];
        let mut table: Vec<Sym> = Vec::new();
        for &h in self.running.iter().chain(self.queue.iter()) {
            let sym = self.slab.name[h.idx as usize];
            if index_of[sym as usize] == u32::MAX {
                index_of[sym as usize] = table.len() as u32;
                table.push(sym);
            }
        }
        for entry in &sched {
            let sym = self.slab.name[entry.payload.idx as usize];
            if index_of[sym as usize] == u32::MAX {
                index_of[sym as usize] = table.len() as u32;
                table.push(sym);
            }
        }
        e.put_usize(table.len());
        for &sym in &table {
            e.put_str(self.names.resolve(sym));
        }
        e.put_usize(self.running.len());
        for &h in &self.running {
            self.encode_session(&mut e, h, &index_of)?;
        }
        e.put_usize(self.queue.len());
        for &h in &self.queue {
            self.encode_session(&mut e, h, &index_of)?;
        }
        e.put_usize(sched.len());
        for entry in &sched {
            let i = entry.payload.idx as usize;
            e.put_f64(entry.at);
            e.put_u64(entry.id);
            e.put_u32(index_of[self.slab.name[i] as usize]);
            Self::encode_job(&mut e, &self.slab.job[i], self.slab.id[i])?;
            e.put_f64(self.slab.weight[i]);
            e.put_u32(self.slab.attempt[i]);
        }
        e.put_usize(self.finished.len());
        for f in &self.finished {
            ckpt::encode_finished(&mut e, f);
        }
        match &self.faults {
            None => e.put_bool(false),
            Some(fs) => {
                e.put_bool(true);
                ckpt::encode_fault_plan(&mut e, &fs.plan);
                e.put_usize(fs.next_event);
                for w in fs.rng.state() {
                    e.put_u64(w);
                }
                e.put_f64(fs.rate_factor);
                e.put_f64(fs.rate_restore_at);
                e.put_usize(fs.log.len());
                for f in &fs.log {
                    ckpt::encode_injected_fault(&mut e, f);
                }
                ckpt::encode_fault_stats(&mut e, &fs.stats);
            }
        }
        match &self.event_feed {
            None => e.put_bool(false),
            Some(feed) => {
                e.put_bool(true);
                e.put_usize(feed.len());
                for ev in feed {
                    ckpt::encode_sim_event(&mut e, ev);
                }
            }
        }
        Ok(e.into_bytes())
    }

    /// Rebuild a system from [`System::checkpoint`] bytes. The restored
    /// system's obs handle is disabled; re-install one with
    /// [`System::set_obs`] before stepping if tracing should continue.
    pub fn restore(bytes: &[u8]) -> std::result::Result<System, CkptError> {
        let mut d = Dec::new(bytes);
        let rate = d.get_f64()?;
        let quantum_units = d.get_f64()?;
        let admission = ckpt::decode_admission(&mut d)?;
        let speed_tau = d.get_f64()?;
        let rate_model = ckpt::decode_rate_model(&mut d)?;
        let step_mode = ckpt::decode_step_mode(&mut d)?;
        let cfg = SystemConfig {
            rate,
            quantum_units,
            admission,
            speed_tau,
            rate_model,
            step_mode,
        };
        let mut sys = System::try_new(cfg)
            .map_err(|e| CkptError::Corrupt(format!("invalid config in checkpoint: {e}")))?;
        sys.clock = d.get_f64()?;
        sys.next_id = d.get_u64()?;
        sys.executed_units = d.get_f64()?;
        sys.rejected = d.get_u64()?;
        sys.error_policy = ckpt::decode_error_policy(&mut d)?;
        // Intern the name table in encode order, so a re-encode of the
        // restored system derives the same first-seen order.
        let nt = d.get_usize()?;
        let mut table: Vec<Sym> = Vec::with_capacity(nt.min(4096));
        for _ in 0..nt {
            let name: Arc<str> = d.get_str()?.into();
            table.push(sys.names.intern(name));
        }
        let n = d.get_usize()?;
        for _ in 0..n {
            let h = sys.decode_session(&mut d, &table)?;
            sys.running.push(h);
        }
        let n = d.get_usize()?;
        for _ in 0..n {
            let h = sys.decode_session(&mut d, &table)?;
            sys.queue.push_back(h);
        }
        let n = d.get_usize()?;
        for _ in 0..n {
            let at = d.get_f64()?;
            let id = d.get_u64()?;
            let sym = table_sym(&table, d.get_u32()?)?;
            let job = Self::decode_job(&mut d)?;
            let weight = d.get_f64()?;
            let attempt = d.get_u32()?;
            let monitor = sys.new_monitor();
            let h = sys.slab.alloc(id, sym, job, weight, at, monitor, attempt);
            sys.scheduled.push(at, id, h);
        }
        let n = d.get_usize()?;
        for _ in 0..n {
            let rec = ckpt::decode_finished(&mut d)?;
            let slot = rec.id as usize;
            if sys.finished_of.len() <= slot {
                sys.finished_of.resize(slot + 1, u32::MAX);
            }
            sys.finished_of[slot] = sys.finished.len() as u32;
            sys.finished.push(rec);
        }
        if d.get_bool()? {
            let plan = ckpt::decode_fault_plan(&mut d)?;
            let next_event = d.get_usize()?;
            if next_event > plan.events().len() {
                return Err(CkptError::Corrupt(format!(
                    "fault cursor {next_event} beyond {} events",
                    plan.events().len()
                )));
            }
            let rng_state = [d.get_u64()?, d.get_u64()?, d.get_u64()?, d.get_u64()?];
            let rate_factor = d.get_f64()?;
            let rate_restore_at = d.get_f64()?;
            let nl = d.get_usize()?;
            let mut log = Vec::with_capacity(nl.min(4096));
            for _ in 0..nl {
                log.push(ckpt::decode_injected_fault(&mut d)?);
            }
            let stats = ckpt::decode_fault_stats(&mut d)?;
            sys.faults = Some(FaultState {
                plan,
                next_event,
                rng: Rng::from_state(rng_state),
                rate_factor,
                rate_restore_at,
                log,
                stats,
            });
        }
        if d.get_bool()? {
            let n = d.get_usize()?;
            let mut feed = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                feed.push(ckpt::decode_sim_event(&mut d)?);
            }
            sys.event_feed = Some(feed);
        }
        if !d.is_exhausted() {
            return Err(CkptError::Corrupt(format!(
                "{} trailing bytes after system state",
                d.remaining()
            )));
        }
        Ok(sys)
    }

    fn encode_job(e: &mut Enc, job: &JobState, id: QueryId) -> std::result::Result<(), CkptError> {
        let snap = job.snapshot_state().ok_or_else(|| {
            CkptError::Unsupported(format!("job of query {id} holds live engine state"))
        })?;
        ckpt::encode_job_snapshot(e, &snap);
        Ok(())
    }

    fn decode_job(d: &mut Dec<'_>) -> std::result::Result<JobState, CkptError> {
        let snap = ckpt::decode_job_snapshot(d)?;
        Ok(JobState::Synthetic(
            crate::job::SyntheticJob::from_snapshot(snap),
        ))
    }

    fn encode_session(
        &self,
        e: &mut Enc,
        h: JobSlot,
        index_of: &[u32],
    ) -> std::result::Result<(), CkptError> {
        let i = h.idx as usize;
        e.put_u64(self.slab.id[i]);
        e.put_u32(index_of[self.slab.name[i] as usize]);
        Self::encode_job(e, &self.slab.job[i], self.slab.id[i])?;
        e.put_f64(self.slab.weight[i]);
        e.put_f64(self.slab.arrived[i]);
        e.put_opt_f64(self.slab.started[i]);
        e.put_f64(self.slab.credit[i]);
        e.put_f64(self.slab.units_done[i]);
        ckpt::encode_speed_monitor(e, &self.slab.monitor[i]);
        e.put_bool(self.slab.blocked[i]);
        match self.slab.rolling_back[i] {
            Some((done, remaining)) => {
                e.put_bool(true);
                e.put_f64(done);
                e.put_f64(remaining);
            }
            None => e.put_bool(false),
        }
        e.put_f64(self.slab.report_scale[i]);
        e.put_u32(self.slab.attempt[i]);
        Ok(())
    }

    fn decode_session(
        &mut self,
        d: &mut Dec<'_>,
        table: &[Sym],
    ) -> std::result::Result<JobSlot, CkptError> {
        let id = d.get_u64()?;
        let sym = table_sym(table, d.get_u32()?)?;
        let job = Self::decode_job(d)?;
        let weight = d.get_f64()?;
        let arrived = d.get_f64()?;
        let started = d.get_opt_f64()?;
        let credit = d.get_f64()?;
        let units_done = d.get_f64()?;
        let monitor = ckpt::decode_speed_monitor(d)?;
        let blocked = d.get_bool()?;
        let rolling_back = if d.get_bool()? {
            Some((d.get_f64()?, d.get_f64()?))
        } else {
            None
        };
        let report_scale = d.get_f64()?;
        let attempt = d.get_u32()?;
        let h = self
            .slab
            .alloc(id, sym, job, weight, arrived, monitor, attempt);
        let i = self.slab.at(h);
        self.slab.started[i] = started;
        self.slab.credit[i] = credit;
        self.slab.units_done[i] = units_done;
        self.slab.blocked[i] = blocked;
        self.slab.rolling_back[i] = rolling_back;
        self.slab.report_scale[i] = report_scale;
        Ok(h)
    }
}

fn table_sym(table: &[Sym], idx: u32) -> std::result::Result<Sym, CkptError> {
    table
        .get(idx as usize)
        .copied()
        .ok_or_else(|| CkptError::Corrupt(format!("name table index {idx} out of range")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SyntheticJob;

    /// A whole simulated system (jobs included) moves into a worker thread
    /// in the parallel experiment harness.
    #[test]
    fn system_is_send() {
        fn send<T: Send>() {}
        send::<System>();
    }

    /// A traced lifecycle emits arrival → admit → stage/finish events, and
    /// the same run with tracing disabled produces identical scheduler
    /// results (the observability layer is read-only).
    #[test]
    fn tracing_captures_lifecycle_and_changes_nothing() {
        let run = |traced: bool| {
            let mut sys = System::new(cfg(100.0, 4.0));
            if traced {
                sys.set_obs(Obs::enabled());
            }
            sys.submit("a", Box::new(SyntheticJob::new(200)), 1.0);
            sys.schedule(1.0, "b", Box::new(SyntheticJob::new(100)), 1.0);
            sys.run_until_idle(1e6).unwrap();
            sys
        };
        let traced = run(true);
        let plain = run(false);
        assert_eq!(traced.now(), plain.now());
        assert_eq!(traced.executed_units(), plain.executed_units());

        let obs = traced.obs();
        let tags: Vec<&str> = obs.events().iter().map(|e| e.kind.tag()).collect();
        assert!(tags.contains(&"arrival"));
        assert!(tags.contains(&"admit"));
        assert!(tags.contains(&"stage"));
        assert!(tags.contains(&"finish"));
        assert_eq!(obs.counter("sim.arrivals"), 2);
        assert_eq!(obs.counter("sim.admitted"), 2);
        assert_eq!(obs.counter("sim.finished.completed"), 2);
        // Virtual-time stamps are monotone.
        let stamps: Vec<f64> = obs.events().iter().map(|e| e.at).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
        // The step span accounts for every executed unit.
        let st = obs.span_stat("sim.step").unwrap();
        assert!(st.calls > 0);
        assert!((st.units - traced.executed_units()).abs() < 1e-9);
        assert!(plain.obs().events().is_empty());
    }

    fn cfg(rate: f64, quantum: f64) -> SystemConfig {
        SystemConfig {
            rate,
            quantum_units: quantum,
            admission: AdmissionPolicy::Unlimited,
            speed_tau: 5.0,
            rate_model: RateModel::Constant,
            step_mode: StepMode::Quantum,
        }
    }

    /// Closed-form GPS finish times for equal weights: with costs sorted
    /// ascending c1..cn, query i finishes at Σ_{k≤i} (c_k − c_{k−1})·(n−k+1)/C.
    fn gps_finish_times(costs: &[f64], rate: f64) -> Vec<f64> {
        let mut sorted = costs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mut t = 0.0;
        let mut prev = 0.0;
        let mut out = Vec::new();
        for (k, c) in sorted.iter().enumerate() {
            t += (c - prev) * (n - k) as f64 / rate;
            prev = *c;
            out.push(t);
        }
        out
    }

    #[test]
    fn equal_weight_sharing_matches_gps_closed_form() {
        let mut sys = System::new(cfg(100.0, 4.0));
        let costs = [400.0, 800.0, 1200.0, 1600.0];
        let ids: Vec<QueryId> = costs
            .iter()
            .map(|c| sys.submit(format!("q{c}"), Box::new(SyntheticJob::new(*c as u64)), 1.0))
            .collect();
        sys.run_until_idle(1e9).unwrap();
        let expected = gps_finish_times(&costs, 100.0);
        for (i, id) in ids.iter().enumerate() {
            let f = sys.finished_record(*id).unwrap();
            let err = (f.finished - expected[i]).abs();
            assert!(
                err < 0.5,
                "query {i}: finished {} vs GPS {} (err {err})",
                f.finished,
                expected[i]
            );
        }
    }

    #[test]
    fn event_driven_matches_gps_closed_form_exactly() {
        let mut c = cfg(100.0, 4.0);
        c.step_mode = StepMode::EventDriven;
        let mut sys = System::new(c);
        let costs = [400.0, 800.0, 1200.0, 1600.0];
        let ids: Vec<QueryId> = costs
            .iter()
            .map(|c| sys.submit(format!("q{c}"), Box::new(SyntheticJob::new(*c as u64)), 1.0))
            .collect();
        sys.run_until_idle(1e9).unwrap();
        let expected = gps_finish_times(&costs, 100.0);
        for (i, id) in ids.iter().enumerate() {
            let f = sys.finished_record(*id).unwrap();
            let err = (f.finished - expected[i]).abs();
            // Event jumps land on completion instants up to the epsilon
            // nudge, far inside even a tight quantum's discretization.
            assert!(
                err < 1e-6,
                "query {i}: finished {} vs GPS {} (err {err})",
                f.finished,
                expected[i]
            );
        }
    }

    #[test]
    fn event_driven_uses_few_steps() {
        let mut c = cfg(100.0, 4.0);
        c.step_mode = StepMode::EventDriven;
        let mut sys = System::new(c);
        for i in 0..4u64 {
            sys.submit(
                format!("q{i}"),
                Box::new(SyntheticJob::new(1000 * (i + 1))),
                1.0,
            );
        }
        let mut steps = 0;
        while sys.has_work() {
            sys.step().unwrap();
            steps += 1;
            assert!(steps < 100, "event mode should not grind quanta");
        }
        // One jump per completion (plus slack for epsilon re-steps).
        assert!(steps <= 12, "took {steps} steps");
        assert_eq!(sys.finished().len(), 4);
    }

    #[test]
    fn event_driven_respects_scheduled_arrivals() {
        let mut c = cfg(100.0, 4.0);
        c.step_mode = StepMode::EventDriven;
        let mut sys = System::new(c);
        let a = sys.submit("a", Box::new(SyntheticJob::new(1000)), 1.0);
        let b = sys.schedule(2.0, "b", Box::new(SyntheticJob::new(400)), 1.0);
        sys.run_until_idle(1e9).unwrap();
        // a runs alone for 2s (200 units), then shares: b done at
        // 2 + 2·400/100 = 10 ⇒ wait, b needs 400 at 50 U/s = 8s ⇒ t=10;
        // a: 1000 = 200 + 50·8 + 100·Δ ⇒ Δ = 4 ⇒ t=14.
        let fa = sys.finished_record(a).unwrap().finished;
        let fb = sys.finished_record(b).unwrap().finished;
        assert!((fb - 10.0).abs() < 1e-6, "b at {fb}");
        assert!((fa - 14.0).abs() < 1e-6, "a at {fa}");
    }

    #[test]
    fn step_until_pins_clock_to_the_boundary() {
        let mut c = cfg(100.0, 4.0);
        c.step_mode = StepMode::EventDriven;
        let mut sys = System::new(c);
        sys.submit("a", Box::new(SyntheticJob::new(100_000)), 1.0);
        sys.step_until(3.25).unwrap();
        assert_eq!(sys.now(), 3.25);
        let snap = sys.snapshot();
        assert!((snap.running[0].done - 325.0).abs() < 1.0);
    }

    #[test]
    fn weighted_sharing_speeds_up_heavy_queries() {
        let mut sys = System::new(cfg(100.0, 2.0));
        let heavy = sys.submit("heavy", Box::new(SyntheticJob::new(1000)), 3.0);
        let light = sys.submit("light", Box::new(SyntheticJob::new(1000)), 1.0);
        sys.run_until_idle(1e9).unwrap();
        let fh = sys.finished_record(heavy).unwrap().finished;
        let fl = sys.finished_record(light).unwrap().finished;
        assert!(fh < fl, "heavy should finish first");
        // Heavy runs at 75 U/s until done: 1000/75 ≈ 13.3 s.
        assert!((fh - 13.33).abs() < 0.5, "heavy finished at {fh}");
        // Light then catches up: total work 2000 at 100 U/s ⇒ 20 s.
        assert!((fl - 20.0).abs() < 0.5, "light finished at {fl}");
    }

    #[test]
    fn admission_queue_blocks_third_query() {
        let mut c = cfg(100.0, 4.0);
        c.admission = AdmissionPolicy::MaxConcurrent(2);
        let mut sys = System::new(c);
        let a = sys.submit("a", Box::new(SyntheticJob::new(500)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(100)), 1.0);
        let q = sys.submit("c", Box::new(SyntheticJob::new(100)), 1.0);
        assert_eq!(sys.running_ids(), vec![a, b]);
        assert_eq!(sys.queued_ids(), vec![q]);
        sys.run_until_idle(1e9).unwrap();
        // b finishes at 2·100/100 = 2s; c starts then.
        let fb = sys.finished_record(b).unwrap().finished;
        let sc = sys.finished_record(q).unwrap().started.unwrap();
        assert!((fb - 2.0).abs() < 0.2);
        assert!((sc - fb).abs() < 0.2, "c started at {sc}, b finished {fb}");
    }

    #[test]
    fn scheduled_arrivals_enter_at_their_time() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.submit("now", Box::new(SyntheticJob::new(1000)), 1.0);
        let later = sys.schedule(5.0, "later", Box::new(SyntheticJob::new(100)), 1.0);
        sys.run_until(4.9).unwrap();
        assert_eq!(sys.running_ids().len(), 1);
        sys.run_until(5.5).unwrap();
        assert_eq!(sys.running_ids().len(), 2);
        let snap = sys.snapshot();
        let st = snap.running.iter().find(|r| r.id == later).unwrap();
        assert!((st.started - 5.0).abs() < 0.1);
    }

    #[test]
    fn scheduled_arrivals_pop_in_time_order() {
        let mut sys = System::new(cfg(100.0, 4.0));
        // Insert out of order; the heap must deliver earliest-first.
        let c = sys.schedule(9.0, "c", Box::new(SyntheticJob::new(10)), 1.0);
        let a = sys.schedule(1.0, "a", Box::new(SyntheticJob::new(10)), 1.0);
        let b = sys.schedule(5.0, "b", Box::new(SyntheticJob::new(10)), 1.0);
        sys.run_until_idle(1e9).unwrap();
        let at = |id| sys.finished_record(id).unwrap().started.unwrap();
        assert!((at(a) - 1.0).abs() < 1e-9);
        assert!((at(b) - 5.0).abs() < 0.2);
        assert!((at(c) - 9.0).abs() < 0.2);
    }

    #[test]
    fn idle_system_fast_forwards_to_arrival() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.schedule(100.0, "far", Box::new(SyntheticJob::new(50)), 1.0);
        sys.run_until_idle(1e9).unwrap();
        let f = &sys.finished()[0];
        assert!((f.started.unwrap() - 100.0).abs() < 1e-9);
        assert!((f.finished - 100.5).abs() < 0.1);
    }

    #[test]
    fn block_and_resume_change_completion_order() {
        let mut sys = System::new(cfg(100.0, 2.0));
        let a = sys.submit("a", Box::new(SyntheticJob::new(500)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(500)), 1.0);
        sys.block(a).unwrap();
        sys.run_until(4.0).unwrap();
        // b ran alone at full speed: ~400 units done; a none.
        let snap = sys.snapshot();
        let sa = snap.running.iter().find(|r| r.id == a).unwrap();
        let sb = snap.running.iter().find(|r| r.id == b).unwrap();
        assert_eq!(sa.done, 0.0);
        assert!(sb.done > 350.0);
        assert!(sa.blocked);
        sys.resume(a).unwrap();
        sys.run_until_idle(1e9).unwrap();
        let fa = sys.finished_record(a).unwrap().finished;
        let fb = sys.finished_record(b).unwrap().finished;
        assert!(fb < fa);
    }

    #[test]
    fn abort_frees_a_slot_and_records_remaining() {
        let mut c = cfg(100.0, 4.0);
        c.admission = AdmissionPolicy::MaxConcurrent(1);
        let mut sys = System::new(c);
        let a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(100)), 1.0);
        sys.run_until(10.0).unwrap();
        sys.abort(a).unwrap();
        let fa = sys.finished_record(a).unwrap();
        assert_eq!(fa.kind, FinishKind::Aborted);
        assert!(fa.units_done > 900.0 && fa.remaining_at_end > 8000.0);
        sys.run_until_idle(1e9).unwrap();
        let fb = sys.finished_record(b).unwrap();
        assert_eq!(fb.kind, FinishKind::Completed);
        assert!(fb.started.unwrap() >= 10.0);
    }

    #[test]
    fn abort_queued_query() {
        let mut c = cfg(100.0, 4.0);
        c.admission = AdmissionPolicy::MaxConcurrent(1);
        let mut sys = System::new(c);
        let _a = sys.submit("a", Box::new(SyntheticJob::new(1000)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(100)), 1.0);
        sys.abort(b).unwrap();
        let fb = sys.finished_record(b).unwrap();
        assert_eq!(fb.kind, FinishKind::Aborted);
        assert!(fb.started.is_none());
        assert_eq!(sys.queued_ids().len(), 0);
    }

    #[test]
    fn snapshot_reports_speeds_that_sum_to_rate() {
        let mut sys = System::new(cfg(100.0, 2.0));
        for i in 0..4 {
            sys.submit(format!("q{i}"), Box::new(SyntheticJob::new(100_000)), 1.0);
        }
        sys.run_until(30.0).unwrap();
        let snap = sys.snapshot();
        let total: f64 = snap
            .running
            .iter()
            .map(|r| r.observed_speed.unwrap_or(0.0))
            .sum();
        assert!((total - 100.0).abs() < 2.0, "total speed = {total}");
    }

    #[test]
    fn close_admission_drops_future_arrivals() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.submit("now", Box::new(SyntheticJob::new(100)), 1.0);
        sys.schedule(5.0, "later", Box::new(SyntheticJob::new(100)), 1.0);
        sys.close_admission();
        sys.run_until_idle(1e9).unwrap();
        assert_eq!(sys.finished().len(), 1);
    }

    #[test]
    fn abort_with_overhead_occupies_the_system_with_rollback_work() {
        let mut sys = System::new(cfg(100.0, 4.0));
        let a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(1_000)), 1.0);
        sys.run_until(2.0).unwrap();
        // Abort `a` with 500 units of rollback: it keeps sharing capacity.
        sys.abort_with_overhead(a, 500).unwrap();
        let snap = sys.snapshot();
        let ra = snap.running.iter().find(|q| q.id == a).unwrap();
        assert!(ra.rolling_back);
        assert!((ra.remaining - 500.0).abs() < 1e-9);
        sys.run_until_idle(1e9).unwrap();
        let fa = sys.finished_record(a).unwrap();
        assert_eq!(fa.kind, FinishKind::Aborted);
        // b finishes later than it would have if the abort freed the slot
        // instantly: total work after abort = 500 + (1000 - done_b).
        let fb = sys.finished_record(b).unwrap();
        assert!(fb.finished > 10.0, "b at {}", fb.finished);
        // Rollback completes before b's remaining work does.
        assert!(fa.finished <= fb.finished);
    }

    #[test]
    fn abort_with_zero_overhead_is_plain_abort() {
        let mut sys = System::new(cfg(100.0, 4.0));
        let a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        sys.run_until(1.0).unwrap();
        sys.abort_with_overhead(a, 0).unwrap();
        assert!(sys.running_ids().is_empty());
        assert_eq!(sys.finished_record(a).unwrap().kind, FinishKind::Aborted);
    }

    #[test]
    fn double_rollback_abort_is_an_error() {
        let mut sys = System::new(cfg(100.0, 4.0));
        let a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        sys.run_until(1.0).unwrap();
        sys.abort_with_overhead(a, 500).unwrap();
        assert!(sys.abort_with_overhead(a, 500).is_err());
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_submission_panics() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.submit("a", Box::new(SyntheticJob::new(10)), 0.0);
    }

    #[test]
    fn contention_model_slows_concurrent_execution() {
        // Ten equal jobs under contention: total throughput drops to
        // C/(1+0.1·9) = C/1.9 while all ten run, so the makespan exceeds
        // the constant-rate makespan substantially.
        let total: u64 = 10 * 1000;
        let make_sys = |model: RateModel| {
            let mut c = cfg(100.0, 4.0);
            c.rate_model = model;
            let mut sys = System::new(c);
            for _ in 0..10 {
                sys.submit("q", Box::new(SyntheticJob::new(1000)), 1.0);
            }
            sys
        };
        let mut constant = make_sys(RateModel::Constant);
        constant.run_until_idle(1e9).unwrap();
        let t_const = constant.now();
        assert!((t_const - total as f64 / 100.0).abs() < 1.0);

        let mut contended = make_sys(RateModel::Contention { alpha: 0.1 });
        contended.run_until_idle(1e9).unwrap();
        let t_cont = contended.now();
        assert!(
            t_cont > 1.5 * t_const,
            "contended {t_cont} vs constant {t_const}"
        );
    }

    #[test]
    fn contention_model_event_mode_agrees_with_quantum() {
        let run = |mode: StepMode| {
            let mut c = cfg(100.0, 1.0);
            c.rate_model = RateModel::Contention { alpha: 0.1 };
            c.step_mode = mode;
            let mut sys = System::new(c);
            for i in 0..5u64 {
                sys.submit(
                    format!("q{i}"),
                    Box::new(SyntheticJob::new(500 * (i + 1))),
                    1.0,
                );
            }
            sys.run_until_idle(1e9).unwrap();
            sys.now()
        };
        let quantum = run(StepMode::Quantum);
        let event = run(StepMode::EventDriven);
        assert!(
            (quantum - event).abs() < 0.1,
            "quantum {quantum} vs event {event}"
        );
    }

    #[test]
    fn effective_rate_formula() {
        assert_eq!(RateModel::Constant.effective_rate(100.0, 10), 100.0);
        let m = RateModel::Contention { alpha: 0.05 };
        assert_eq!(m.effective_rate(100.0, 1), 100.0);
        assert!((m.effective_rate(100.0, 11) - 100.0 / 1.5).abs() < 1e-9);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.run_until(42.0).unwrap();
        assert!((sys.now() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn try_new_rejects_bad_configs() {
        for bad in [
            SystemConfig {
                rate: 0.0,
                ..cfg(100.0, 4.0)
            },
            SystemConfig {
                quantum_units: -1.0,
                ..cfg(100.0, 4.0)
            },
            SystemConfig {
                speed_tau: 0.0,
                ..cfg(100.0, 4.0)
            },
            SystemConfig {
                rate: f64::NAN,
                ..cfg(100.0, 4.0)
            },
        ] {
            assert!(
                System::try_new(bad).is_err(),
                "cfg {bad:?} must be rejected"
            );
        }
    }

    use crate::faults::{FaultEvent, FaultKind, FaultPlan, RetryPolicy};

    fn plan(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan::new(events, 99, RetryPolicy::default())
    }

    #[test]
    fn cost_noise_scales_only_the_reported_remaining() {
        let mut sys = System::new(cfg(100.0, 4.0));
        let a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        sys.install_faults(plan(vec![FaultEvent {
            at: 1.0,
            kind: FaultKind::CostNoise { factor: 2.0 },
        }]));
        sys.run_until(2.0).unwrap();
        let snap = sys.snapshot();
        let ra = snap.running.iter().find(|r| r.id == a).unwrap();
        // True remaining ≈ 10000 − 200; reported is doubled.
        assert!((ra.remaining - 2.0 * (10_000.0 - ra.done)).abs() < 1e-6);
        // The scheduler itself is undisturbed: work proceeds at the rate.
        assert!((ra.done - 200.0).abs() < 8.0);
        assert_eq!(sys.fault_stats().unwrap().cost_noise, 1);
    }

    #[test]
    fn rate_dip_slows_execution_then_recovers() {
        let mut sys = System::new(cfg(100.0, 1.0));
        sys.submit("a", Box::new(SyntheticJob::new(100_000)), 1.0);
        sys.install_faults(plan(vec![FaultEvent {
            at: 10.0,
            kind: FaultKind::RateDip {
                factor: 0.5,
                duration: 10.0,
            },
        }]));
        sys.run_until(30.0).unwrap();
        // 10s at 100 + 10s at 50 + 10s at 100 = 2500 units.
        let done = sys.snapshot().running[0].done;
        assert!((done - 2500.0).abs() < 5.0, "done = {done}");
        // The PI-visible nominal rate never changes.
        assert_eq!(sys.snapshot().rate, 100.0);
        assert_eq!(sys.current_rate(), 100.0); // dip expired
        assert_eq!(sys.fault_stats().unwrap().rate_dips, 1);
    }

    #[test]
    fn abort_retry_resubmits_with_backoff() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.submit("victim", Box::new(SyntheticJob::new(5_000)), 1.0);
        sys.install_faults(plan(vec![FaultEvent {
            at: 5.0,
            kind: FaultKind::AbortRetry { overhead: 100 },
        }]));
        sys.run_until_idle(1e6).unwrap();
        let stats = sys.fault_stats().unwrap();
        assert_eq!(stats.aborts, 1);
        assert_eq!(stats.retries_scheduled, 1);
        let finished = sys.finished();
        let aborted = finished
            .iter()
            .find(|f| f.kind == FinishKind::Aborted)
            .unwrap();
        assert!(aborted.rollback_units > 0.0, "rollback work accounted");
        // The retry ran to completion under a fresh name.
        let retried = finished
            .iter()
            .find(|f| f.name.as_ref() == "victim#r1")
            .unwrap();
        assert_eq!(retried.kind, FinishKind::Completed);
        // Backoff: the retry arrived base_delay after the abort fired.
        assert!((retried.arrived - (5.0 + 1.0)).abs() < 0.1);
        // Conservation across abort → rollback → retry.
        let accounted: f64 = finished
            .iter()
            .map(|f| f.units_done + f.rollback_units)
            .sum::<f64>()
            + sys.live_units_done();
        assert!((sys.executed_units() - accounted).abs() < 1e-6);
    }

    #[test]
    fn burst_overloads_bounded_admission_and_sheds() {
        let mut c = cfg(100.0, 4.0);
        c.admission = AdmissionPolicy::Bounded { slots: 1, queue: 2 };
        let mut sys = System::new(c);
        sys.submit("long", Box::new(SyntheticJob::new(100_000)), 1.0);
        sys.install_faults(plan(vec![FaultEvent {
            at: 1.0,
            kind: FaultKind::Burst {
                queries: 5,
                cost: 100,
            },
        }]));
        sys.run_until(2.0).unwrap();
        assert_eq!(sys.running_ids().len(), 1);
        assert_eq!(sys.queued_ids().len(), 2);
        assert_eq!(sys.rejected_count(), 3);
        let rejected: Vec<_> = sys
            .finished()
            .iter()
            .filter(|f| f.kind == FinishKind::Rejected)
            .collect();
        assert_eq!(rejected.len(), 3);
        for r in rejected {
            assert_eq!(r.units_done, 0.0);
            assert!(r.started.is_none());
            assert_eq!(r.remaining_at_end, 100.0);
        }
    }

    #[test]
    fn page_fault_is_isolated_and_retried() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.set_error_policy(ErrorPolicy::Isolate);
        sys.submit("a", Box::new(SyntheticJob::new(1_000)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(1_000)), 1.0);
        sys.install_faults(plan(vec![FaultEvent {
            at: 2.0,
            kind: FaultKind::PageFault,
        }]));
        sys.run_until_idle(1e6).unwrap();
        let stats = sys.fault_stats().unwrap();
        assert_eq!(stats.page_faults, 1);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.retries_scheduled, 1);
        let failed = sys
            .finished()
            .iter()
            .find(|f| f.kind == FinishKind::Failed)
            .unwrap();
        assert!(failed.units_done > 0.0);
        // Everyone else completed untouched; the retry completed too.
        assert!(sys.finished_record(b).is_some());
        let completed = sys
            .finished()
            .iter()
            .filter(|f| f.kind == FinishKind::Completed)
            .count();
        assert_eq!(completed, 2);
    }

    #[test]
    fn page_fault_propagates_without_isolation() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.submit("a", Box::new(SyntheticJob::new(1_000)), 1.0);
        sys.install_faults(plan(vec![FaultEvent {
            at: 2.0,
            kind: FaultKind::PageFault,
        }]));
        assert!(sys.run_until_idle(1e6).is_err());
    }

    #[test]
    fn burst_on_idle_system_fires_at_its_scheduled_time() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.install_faults(plan(vec![FaultEvent {
            at: 7.0,
            kind: FaultKind::Burst {
                queries: 2,
                cost: 100,
            },
        }]));
        sys.run_until_idle(1e6).unwrap();
        assert_eq!(sys.finished().len(), 2);
        for f in sys.finished() {
            assert!((f.arrived - 7.0).abs() < 1e-9, "arrived {}", f.arrived);
        }
    }

    #[test]
    fn victimless_faults_are_skipped_not_applied() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.install_faults(plan(vec![
            FaultEvent {
                at: 1.0,
                kind: FaultKind::CostNoise { factor: 2.0 },
            },
            FaultEvent {
                at: 2.0,
                kind: FaultKind::PageFault,
            },
        ]));
        sys.run_until(5.0).unwrap();
        let stats = sys.fault_stats().unwrap();
        assert_eq!(stats.injected, 0);
        assert_eq!(stats.skipped, 2);
        assert!(sys.fault_log().is_empty());
    }

    #[test]
    fn retry_budget_is_exhausted_by_repeated_aborts() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.submit("v", Box::new(SyntheticJob::new(1_000_000)), 1.0);
        // Abort whatever runs every 20s; the chain v → v#r1 → v#r2 → v#r3
        // exhausts the default 3-attempt budget.
        let events = (1..=8)
            .map(|i| FaultEvent {
                at: 20.0 * i as f64,
                kind: FaultKind::AbortRetry { overhead: 0 },
            })
            .collect();
        sys.install_faults(plan(events));
        sys.run_until_idle(1e6).unwrap();
        let stats = sys.fault_stats().unwrap();
        assert_eq!(stats.retries_scheduled, 3);
        assert_eq!(stats.retries_exhausted, 1);
        assert!(sys
            .finished()
            .iter()
            .any(|f| f.name.as_ref() == "v#r3" && f.kind == FinishKind::Aborted));
    }

    #[test]
    fn queued_abort_is_zero_progress_and_leaves_snapshot_same_tick() {
        let mut c = cfg(100.0, 4.0);
        c.admission = AdmissionPolicy::MaxConcurrent(1);
        let mut sys = System::new(c);
        let _a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(500)), 1.0);
        sys.run_until(1.0).unwrap();
        assert!(sys.snapshot().queued.iter().any(|q| q.id == b));
        sys.abort(b).unwrap();
        let rec = sys.finished_record(b).unwrap();
        assert_eq!(rec.kind, FinishKind::Aborted);
        assert!(rec.started.is_none());
        assert_eq!(rec.units_done, 0.0);
        assert_eq!(rec.rollback_units, 0.0);
        assert_eq!(rec.remaining_at_end, 500.0);
        assert_eq!(rec.finished, sys.now());
        // Same tick, no step in between: the snapshot no longer lists it.
        let snap = sys.snapshot();
        assert!(snap.queued.iter().all(|q| q.id != b));
        assert!(snap.running.iter().all(|r| r.id != b));
    }

    #[test]
    fn abort_of_rolling_back_session_conserves_work() {
        let mut sys = System::new(cfg(100.0, 4.0));
        let a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        sys.run_until(2.0).unwrap();
        sys.abort_with_overhead(a, 500).unwrap();
        sys.run_until(4.0).unwrap(); // rollback partially done
        sys.abort(a).unwrap();
        let rec = sys.finished_record(a).unwrap();
        assert_eq!(rec.kind, FinishKind::Aborted);
        assert!((rec.units_done - 200.0).abs() < 8.0);
        assert!(rec.rollback_units > 0.0);
        let accounted: f64 = rec.units_done + rec.rollback_units;
        assert!((sys.executed_units() - accounted).abs() < 1e-6);
    }

    #[test]
    fn executed_units_ledger_balances_under_mixed_outcomes() {
        let mut c = cfg(100.0, 4.0);
        c.admission = AdmissionPolicy::Bounded { slots: 2, queue: 1 };
        let mut sys = System::new(c);
        sys.set_error_policy(ErrorPolicy::Isolate);
        for i in 0..4u64 {
            sys.submit(
                format!("q{i}"),
                Box::new(SyntheticJob::new(400 * (i + 1))),
                1.0,
            );
        }
        sys.install_faults(plan(vec![
            FaultEvent {
                at: 1.0,
                kind: FaultKind::AbortRetry { overhead: 50 },
            },
            FaultEvent {
                at: 2.0,
                kind: FaultKind::PageFault,
            },
            FaultEvent {
                at: 3.0,
                kind: FaultKind::Burst {
                    queries: 3,
                    cost: 200,
                },
            },
        ]));
        sys.run_until_idle(1e6).unwrap();
        let accounted: f64 = sys
            .finished()
            .iter()
            .map(|f| f.units_done + f.rollback_units)
            .sum::<f64>()
            + sys.live_units_done();
        assert!(
            (sys.executed_units() - accounted).abs() < 1e-6,
            "executed {} vs accounted {accounted}",
            sys.executed_units()
        );
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::faults::{FaultMix, FaultPlan};
    use crate::job::{JobProgress, SyntheticJob};

    fn chaos_system(seed: u64) -> System {
        let mut sys = System::new(SystemConfig {
            rate: 100.0,
            quantum_units: 8.0,
            admission: AdmissionPolicy::Bounded { slots: 3, queue: 2 },
            speed_tau: 5.0,
            rate_model: RateModel::Contention { alpha: 0.05 },
            step_mode: StepMode::Quantum,
        });
        sys.set_error_policy(ErrorPolicy::Isolate);
        for i in 0..5u64 {
            sys.submit(
                format!("q{i}"),
                Box::new(SyntheticJob::with_report_scale(300 * (i + 1), 1.25)),
                1.0 + i as f64 * 0.5,
            );
        }
        sys.schedule(4.0, "late", Box::new(SyntheticJob::new(500)), 2.0);
        sys.install_faults(FaultPlan::generate(seed, 40.0, &FaultMix::even(2)));
        sys
    }

    /// Fingerprint every observable outcome bit-exactly (floats via their
    /// bit patterns, not display rounding).
    fn fingerprint(sys: &System) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "clock={:016x} executed={:016x} rejected={} next_id={}",
            sys.now().to_bits(),
            sys.executed_units().to_bits(),
            sys.rejected_count(),
            sys.next_id,
        );
        for f in sys.finished() {
            let _ = writeln!(
                out,
                "fin id={} name={} kind={:?} arr={:016x} fin={:016x} done={:016x} rem={:016x} rb={:016x}",
                f.id,
                f.name,
                f.kind,
                f.arrived.to_bits(),
                f.finished.to_bits(),
                f.units_done.to_bits(),
                f.remaining_at_end.to_bits(),
                f.rollback_units.to_bits(),
            );
        }
        if let Some(st) = sys.fault_stats() {
            let _ = writeln!(out, "stats={st:?}");
        }
        for f in sys.fault_log() {
            let _ = writeln!(
                out,
                "fault at={:016x} {:?} v={:?}",
                f.at.to_bits(),
                f.kind,
                f.victim
            );
        }
        let snap = sys.snapshot();
        for q in &snap.running {
            let _ = writeln!(
                out,
                "run id={} done={:016x} rem={:016x} spd={:?} blk={} rb={}",
                q.id,
                q.done.to_bits(),
                q.remaining.to_bits(),
                q.observed_speed.map(f64::to_bits),
                q.blocked,
                q.rolling_back,
            );
        }
        for q in &snap.queued {
            let _ = writeln!(out, "que id={} est={:016x}", q.id, q.est_cost.to_bits());
        }
        out
    }

    /// Checkpointing at *every* step boundary and continuing from the
    /// restored copy must be bit-identical to never having stopped.
    #[test]
    fn restore_at_every_boundary_is_bit_identical() {
        let mut straight = chaos_system(11);
        let mut hopped = chaos_system(11);
        let mut steps = 0usize;
        while straight.has_work() && straight.now() < 60.0 && steps < 20_000 {
            straight.step().unwrap();
            hopped.step().unwrap();
            let bytes = hopped.checkpoint().unwrap();
            hopped = System::restore(&bytes).unwrap();
            assert_eq!(fingerprint(&hopped), fingerprint(&straight));
            steps += 1;
        }
        assert!(steps > 50, "scenario too small to be meaningful: {steps}");
        assert!(!straight.finished().is_empty());
    }

    /// A second encode of a restored system yields the same bytes — the
    /// encoding is canonical, not merely equivalent.
    #[test]
    fn checkpoint_encoding_is_canonical() {
        let mut sys = chaos_system(3);
        sys.run_until(10.0).unwrap();
        let a = sys.checkpoint().unwrap();
        let restored = System::restore(&a).unwrap();
        let b = restored.checkpoint().unwrap();
        assert_eq!(a, b);
    }

    /// Event-driven mode survives a round trip mid-flight too.
    #[test]
    fn event_driven_mode_round_trips() {
        let mk = || {
            let mut sys = System::new(SystemConfig {
                rate: 50.0,
                step_mode: StepMode::EventDriven,
                ..SystemConfig::default()
            });
            for i in 0..3u64 {
                sys.submit(
                    format!("e{i}"),
                    Box::new(SyntheticJob::new(400 + 100 * i)),
                    1.0,
                );
            }
            sys.schedule(7.0, "later", Box::new(SyntheticJob::new(250)), 1.0);
            sys
        };
        let mut straight = mk();
        let mut hopped = mk();
        while straight.has_work() {
            straight.step().unwrap();
            hopped.step().unwrap();
            hopped = System::restore(&hopped.checkpoint().unwrap()).unwrap();
        }
        assert_eq!(fingerprint(&hopped), fingerprint(&straight));
    }

    /// Jobs with live, non-serializable state make the checkpoint fail
    /// gracefully, not silently lose work.
    #[test]
    fn unsupported_job_is_reported() {
        struct OpaqueJob;
        impl Job for OpaqueJob {
            fn run(&mut self, budget: u64) -> Result<u64> {
                Ok(budget)
            }
            fn finished(&self) -> bool {
                false
            }
            fn progress(&self) -> JobProgress {
                JobProgress {
                    done: 0.0,
                    remaining: 1.0,
                    initial_estimate: 1.0,
                    finished: false,
                }
            }
        }
        let mut sys = System::new(SystemConfig::default());
        sys.submit("opaque", Box::new(OpaqueJob), 1.0);
        assert!(matches!(sys.checkpoint(), Err(CkptError::Unsupported(_))));
    }

    /// Damaged bytes are rejected with typed errors, never a panic.
    #[test]
    fn restore_rejects_damaged_bytes() {
        let mut sys = chaos_system(5);
        sys.run_until(5.0).unwrap();
        let bytes = sys.checkpoint().unwrap();
        assert!(System::restore(&bytes[..bytes.len() / 2]).is_err());
        assert!(System::restore(&[]).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(System::restore(&trailing).is_err());
    }
}
