//! The multi-query scheduler: generalized processor sharing in virtual time.
//!
//! Every [`System::step`] distributes one quantum of work units among the
//! running queries in proportion to their weights and advances the virtual
//! clock by `quantum_units / rate` seconds (shortened to hit scheduled
//! arrivals exactly). Queries are [`Job`]s — engine cursors doing real work
//! or synthetic jobs with exact costs.
//!
//! When every unblocked job knows its exact remaining work
//! ([`Job::exact_remaining`], true for synthetic jobs),
//! [`StepMode::EventDriven`] lets a step jump the clock straight to the
//! next completion/arrival/step-limit boundary instead of grinding through
//! `total_work / quantum_units` quanta. Engine-cursor jobs keep the quantum
//! path, which also remains available as a cross-check.
//!
//! The system also implements the workload-management verbs the paper's §3
//! algorithms need: [`System::block`], [`System::resume`], and
//! [`System::abort`].

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use mqpi_engine::error::{EngineError, Result};

use crate::admission::AdmissionPolicy;
use crate::job::Job;
use crate::speed::SpeedMonitor;

/// Identifier of a query within one `System`.
pub type QueryId = u64;

/// How the aggregate processing rate depends on the number of running
/// queries. The paper's Assumption 1 is [`RateModel::Constant`];
/// [`RateModel::Contention`] deliberately violates it for the §4.1
/// robustness ablation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RateModel {
    /// `C(n) = C` — Assumption 1 holds exactly.
    #[default]
    Constant,
    /// `C(n) = C / (1 + alpha·(n−1))` — every additional concurrent query
    /// costs `alpha` of contention overhead (buffer-pool interference,
    /// context switching), so total throughput *decreases* with load.
    Contention {
        /// Per-extra-query slowdown factor (e.g. 0.05).
        alpha: f64,
    },
}

impl RateModel {
    /// Effective aggregate rate for `n` unblocked running queries.
    pub fn effective_rate(&self, base: f64, n: usize) -> f64 {
        match self {
            RateModel::Constant => base,
            RateModel::Contention { alpha } => base / (1.0 + alpha * (n.saturating_sub(1)) as f64),
        }
    }
}

/// How [`System::step`] advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Fixed work quantum per step (`quantum_units / rate` seconds).
    #[default]
    Quantum,
    /// Jump each step straight to the next completion or arrival whenever
    /// every unblocked running job reports [`Job::exact_remaining`]; steps
    /// fall back to the quantum path otherwise (engine cursors).
    EventDriven,
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Aggregate processing rate `C` in work units per second
    /// (Assumption 1).
    pub rate: f64,
    /// Work units distributed per scheduling quantum. Smaller = closer to
    /// the fluid (GPS) ideal, slower to simulate.
    pub quantum_units: f64,
    /// Admission policy.
    pub admission: AdmissionPolicy,
    /// Time constant of the per-query observed-speed monitors.
    pub speed_tau: f64,
    /// How the aggregate rate responds to concurrency (Assumption 1 knob).
    pub rate_model: RateModel,
    /// Quantum grind vs event-driven fast-forward.
    pub step_mode: StepMode,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            rate: 60.0,
            quantum_units: 16.0,
            admission: AdmissionPolicy::Unlimited,
            speed_tau: 10.0,
            rate_model: RateModel::Constant,
            step_mode: StepMode::Quantum,
        }
    }
}

struct Session {
    id: QueryId,
    name: Arc<str>,
    job: Box<dyn Job>,
    weight: f64,
    arrived: f64,
    started: Option<f64>,
    credit: f64,
    units_done: f64,
    monitor: SpeedMonitor,
    blocked: bool,
    /// Set when the session is executing rollback work after an abort; it
    /// still occupies capacity, and completes as `FinishKind::Aborted`.
    /// Holds `(units_done, remaining)` of the original query at abort time
    /// so the finished record reports the query's work, not the rollback's.
    rolling_back: Option<(f64, f64)>,
}

/// How a query left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FinishKind {
    /// Ran to completion.
    Completed,
    /// Killed by a workload-management action.
    Aborted,
}

/// Record of a query that left the system.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FinishedQuery {
    /// Query id.
    pub id: QueryId,
    /// Query name (caller-supplied label).
    pub name: Arc<str>,
    /// Scheduling weight.
    pub weight: f64,
    /// Arrival time.
    pub arrived: f64,
    /// Execution start time (None if aborted while queued).
    pub started: Option<f64>,
    /// Completion/abort time.
    pub finished: f64,
    /// Completion vs abort.
    pub kind: FinishKind,
    /// Work units completed.
    pub units_done: f64,
    /// Estimated remaining cost at the moment of leaving (0 when completed).
    pub remaining_at_end: f64,
}

/// Point-in-time state of a running (or blocked) query.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct QueryState {
    /// Query id.
    pub id: QueryId,
    /// Query name.
    pub name: Arc<str>,
    /// Scheduling weight.
    pub weight: f64,
    /// Arrival time.
    pub arrived: f64,
    /// Start time.
    pub started: f64,
    /// Work done so far (units).
    pub done: f64,
    /// Refined remaining-cost estimate (units).
    pub remaining: f64,
    /// The pre-execution cost estimate.
    pub initial_estimate: f64,
    /// Observed speed (units/s) from this query's monitor.
    pub observed_speed: Option<f64>,
    /// Whether the query is currently blocked.
    pub blocked: bool,
    /// Whether the query is executing rollback work after an abort.
    pub rolling_back: bool,
}

/// Point-in-time state of a queued query.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct QueuedState {
    /// Query id.
    pub id: QueryId,
    /// Query name.
    pub name: Arc<str>,
    /// Scheduling weight it will run with.
    pub weight: f64,
    /// Arrival time.
    pub arrived: f64,
    /// Estimated total cost (pre-execution estimate).
    pub est_cost: f64,
}

/// Snapshot consumed by progress indicators.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SystemSnapshot {
    /// Virtual time of the snapshot.
    pub time: f64,
    /// Aggregate processing rate `C`.
    pub rate: f64,
    /// Running and blocked queries.
    pub running: Vec<QueryState>,
    /// Admission queue, front first.
    pub queued: Vec<QueuedState>,
}

struct Scheduled {
    at: f64,
    id: QueryId,
    name: Arc<str>,
    job: Box<dyn Job>,
    weight: f64,
}

// Min-heap order on (at, id): the entry with the earliest arrival time —
// ties broken by submission order — is the `BinaryHeap` maximum.
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .total_cmp(&self.at)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Scheduled {}

/// The simulated multi-query RDBMS.
pub struct System {
    cfg: SystemConfig,
    clock: f64,
    running: Vec<Session>,
    queue: VecDeque<Session>,
    /// Future arrivals, earliest first.
    scheduled: BinaryHeap<Scheduled>,
    finished: Vec<FinishedQuery>,
    /// id → index into `finished`.
    finished_index: HashMap<QueryId, usize>,
    next_id: QueryId,
}

impl System {
    /// Create a system.
    pub fn new(cfg: SystemConfig) -> Self {
        assert!(cfg.rate > 0.0 && cfg.quantum_units > 0.0);
        System {
            cfg,
            clock: 0.0,
            running: Vec::new(),
            queue: VecDeque::new(),
            scheduled: BinaryHeap::new(),
            finished: Vec::new(),
            finished_index: HashMap::new(),
            next_id: 1,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.clock
    }

    /// Aggregate processing rate `C`.
    pub fn rate(&self) -> f64 {
        self.cfg.rate
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn occupied_slots(&self) -> usize {
        self.running.len()
    }

    /// Submit a query now; starts immediately or queues per the admission
    /// policy.
    pub fn submit(&mut self, name: impl Into<Arc<str>>, job: Box<dyn Job>, weight: f64) -> QueryId {
        assert!(weight > 0.0, "scheduling weight must be positive");
        let id = self.next_id;
        self.next_id += 1;
        self.place(Session {
            id,
            name: name.into(),
            job,
            weight,
            arrived: self.clock,
            started: None,
            credit: 0.0,
            units_done: 0.0,
            monitor: SpeedMonitor::new_at(self.cfg.speed_tau, self.clock),
            blocked: false,
            rolling_back: None,
        });
        id
    }

    /// Schedule a query to arrive at virtual time `at` (≥ now).
    pub fn schedule(
        &mut self,
        at: f64,
        name: impl Into<Arc<str>>,
        job: Box<dyn Job>,
        weight: f64,
    ) -> QueryId {
        assert!(weight > 0.0, "scheduling weight must be positive");
        let id = self.next_id;
        self.next_id += 1;
        self.scheduled.push(Scheduled {
            at: at.max(self.clock),
            id,
            name: name.into(),
            job,
            weight,
        });
        id
    }

    fn place(&mut self, mut s: Session) {
        if self.cfg.admission.admits(self.occupied_slots()) {
            s.started = Some(self.clock);
            s.monitor = SpeedMonitor::new_at(self.cfg.speed_tau, self.clock);
            self.running.push(s);
        } else {
            self.queue.push_back(s);
        }
    }

    fn process_due_arrivals(&mut self) {
        while let Some(first) = self.scheduled.peek() {
            if first.at > self.clock {
                break;
            }
            let sch = self.scheduled.pop().unwrap();
            self.place(Session {
                id: sch.id,
                name: sch.name,
                job: sch.job,
                weight: sch.weight,
                arrived: sch.at,
                started: None,
                credit: 0.0,
                units_done: 0.0,
                monitor: SpeedMonitor::new_at(self.cfg.speed_tau, self.clock),
                blocked: false,
                rolling_back: None,
            });
        }
    }

    fn admit_from_queue(&mut self) {
        while !self.queue.is_empty() && self.cfg.admission.admits(self.occupied_slots()) {
            let mut s = self.queue.pop_front().unwrap();
            s.started = Some(self.clock);
            s.monitor = SpeedMonitor::new_at(self.cfg.speed_tau, self.clock);
            self.running.push(s);
        }
    }

    /// Whether any work or future arrivals remain.
    pub fn has_work(&self) -> bool {
        !self.running.is_empty() || !self.queue.is_empty() || !self.scheduled.is_empty()
    }

    fn next_arrival_at(&self) -> Option<f64> {
        self.scheduled.peek().map(|s| s.at)
    }

    fn record_finished(&mut self, rec: FinishedQuery) {
        self.finished_index.insert(rec.id, self.finished.len());
        self.finished.push(rec);
    }

    /// Time until the next completion event, valid when every unblocked
    /// running job reports [`Job::exact_remaining`]; `None` falls the step
    /// back to the quantum path.
    fn event_jump(&self, effective: f64, total_weight: f64) -> Option<f64> {
        let mut dt = f64::INFINITY;
        for s in self.running.iter().filter(|s| !s.blocked) {
            let remaining = s.job.exact_remaining()?;
            let need = (remaining - s.credit).max(0.0);
            let speed = effective * s.weight / total_weight;
            dt = dt.min(need / speed);
        }
        if !dt.is_finite() {
            return None;
        }
        // Nudge past the exact completion instant so the integer floor of
        // the finisher's credit still covers its last unit of work.
        Some(dt * (1.0 + 1e-9) + 1e-12)
    }

    /// Advance one step (a quantum, or an event jump in
    /// [`StepMode::EventDriven`]). Returns ids of queries that completed
    /// during this step.
    pub fn step(&mut self) -> Result<Vec<QueryId>> {
        self.step_bounded(f64::INFINITY)
    }

    /// Like [`System::step`], but never advances the clock past `limit` —
    /// event jumps and quanta alike are clipped to the boundary, so callers
    /// can sample the system at exact instants.
    pub fn step_until(&mut self, limit: f64) -> Result<Vec<QueryId>> {
        self.step_bounded(limit)
    }

    fn step_bounded(&mut self, limit: f64) -> Result<Vec<QueryId>> {
        if limit <= self.clock {
            return Ok(Vec::new());
        }
        self.process_due_arrivals();
        // Idle fast-forward to the next arrival (never past `limit`).
        if self.running.is_empty() && self.queue.is_empty() {
            match self.next_arrival_at() {
                Some(at) if at < limit => {
                    self.clock = at;
                    self.process_due_arrivals();
                }
                Some(_) => {
                    // Next event is beyond the boundary: pin to it.
                    self.clock = limit;
                    return Ok(Vec::new());
                }
                None => return Ok(Vec::new()),
            }
        }

        let active = self.running.iter().filter(|s| !s.blocked).count();
        let total_weight: f64 = self
            .running
            .iter()
            .filter(|s| !s.blocked)
            .map(|s| s.weight)
            .sum();
        let effective = self.cfg.rate_model.effective_rate(self.cfg.rate, active);

        let mut dt = self.cfg.quantum_units / self.cfg.rate;
        if self.cfg.step_mode == StepMode::EventDriven && total_weight > 0.0 {
            if let Some(jump) = self.event_jump(effective, total_weight) {
                dt = jump;
            }
        }
        if let Some(at) = self.next_arrival_at() {
            if at > self.clock {
                dt = dt.min(at - self.clock);
            }
        }
        let mut pinned = false;
        if limit.is_finite() && self.clock + dt >= limit {
            dt = limit - self.clock;
            pinned = true;
        }

        if total_weight > 0.0 {
            let grant = effective * dt;
            for s in self.running.iter_mut().filter(|s| !s.blocked) {
                s.credit += grant * s.weight / total_weight;
                let budget = s.credit.floor();
                if budget >= 1.0 {
                    let used = s.job.run(budget as u64)?;
                    s.credit -= used as f64;
                    s.units_done += used as f64;
                }
            }
        }
        self.clock += dt;
        if pinned {
            // Land exactly on the boundary despite floating-point rounding.
            self.clock = limit;
        }
        for s in &mut self.running {
            let done = s.units_done;
            s.monitor.update(self.clock, done);
        }

        // Collect finishers.
        let mut done_ids = Vec::new();
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].job.finished() {
                let s = self.running.remove(i);
                done_ids.push(s.id);
                // A rollback completion reports the *query's* progress at
                // abort time, not the rollback job's counters.
                let (kind, units_done, remaining_at_end) = match s.rolling_back {
                    Some((done, remaining)) => (FinishKind::Aborted, done, remaining),
                    None => (FinishKind::Completed, s.units_done, 0.0),
                };
                self.record_finished(FinishedQuery {
                    id: s.id,
                    name: s.name,
                    weight: s.weight,
                    arrived: s.arrived,
                    started: s.started,
                    finished: self.clock,
                    kind,
                    units_done,
                    remaining_at_end,
                });
            } else {
                i += 1;
            }
        }
        if !done_ids.is_empty() {
            self.admit_from_queue();
        }
        Ok(done_ids)
    }

    /// Run until virtual time `t` (or until idle with no future arrivals).
    pub fn run_until(&mut self, t: f64) -> Result<Vec<QueryId>> {
        let mut finished = Vec::new();
        while self.clock < t && self.has_work() {
            finished.extend(self.step_bounded(t)?);
        }
        if self.clock < t && !self.has_work() {
            self.clock = t;
        }
        Ok(finished)
    }

    /// Run until no running, queued, or scheduled queries remain, or until
    /// the safety horizon `max_t` is hit. Returns all completions.
    pub fn run_until_idle(&mut self, max_t: f64) -> Result<Vec<QueryId>> {
        let mut finished = Vec::new();
        while self.has_work() && self.clock < max_t {
            finished.extend(self.step_bounded(max_t)?);
        }
        Ok(finished)
    }

    /// Block a running query: it keeps its slot but receives no more work
    /// (the paper's single-/multiple-query speed-up victim action).
    pub fn block(&mut self, id: QueryId) -> Result<()> {
        match self.running.iter_mut().find(|s| s.id == id) {
            Some(s) => {
                s.blocked = true;
                Ok(())
            }
            None => Err(EngineError::exec(format!("no running query {id}"))),
        }
    }

    /// Resume a blocked query.
    pub fn resume(&mut self, id: QueryId) -> Result<()> {
        match self.running.iter_mut().find(|s| s.id == id) {
            Some(s) => {
                s.blocked = false;
                Ok(())
            }
            None => Err(EngineError::exec(format!("no running query {id}"))),
        }
    }

    /// Abort a running or queued query.
    pub fn abort(&mut self, id: QueryId) -> Result<()> {
        if let Some(pos) = self.running.iter().position(|s| s.id == id) {
            let s = self.running.remove(pos);
            let remaining = s.job.progress().remaining;
            self.record_finished(FinishedQuery {
                id: s.id,
                name: s.name,
                weight: s.weight,
                arrived: s.arrived,
                started: s.started,
                finished: self.clock,
                kind: FinishKind::Aborted,
                units_done: s.units_done,
                remaining_at_end: remaining,
            });
            self.admit_from_queue();
            return Ok(());
        }
        if let Some(pos) = self.queue.iter().position(|s| s.id == id) {
            let s = self.queue.remove(pos).unwrap();
            let remaining = s.job.progress().remaining;
            self.record_finished(FinishedQuery {
                id: s.id,
                name: s.name,
                weight: s.weight,
                arrived: s.arrived,
                started: None,
                finished: self.clock,
                kind: FinishKind::Aborted,
                units_done: s.units_done,
                remaining_at_end: remaining,
            });
            return Ok(());
        }
        Err(EngineError::exec(format!("no such query {id}")))
    }

    /// Abort a running query whose rollback costs `overhead` work units
    /// (the paper leaves non-negligible abort overhead as future work; this
    /// models it). The session keeps its slot and its weight while the
    /// rollback runs; it then leaves as [`FinishKind::Aborted`]. Zero
    /// overhead degenerates to [`System::abort`]. Queued queries abort
    /// instantly (nothing to roll back).
    pub fn abort_with_overhead(&mut self, id: QueryId, overhead: u64) -> Result<()> {
        if overhead == 0 {
            return self.abort(id);
        }
        if let Some(s) = self.running.iter_mut().find(|s| s.id == id) {
            if s.rolling_back.is_some() {
                return Err(EngineError::exec(format!(
                    "query {id} is already rolling back"
                )));
            }
            let remaining = s.job.progress().remaining;
            s.rolling_back = Some((s.units_done, remaining));
            s.job = Box::new(crate::job::SyntheticJob::new(overhead));
            s.blocked = false;
            s.credit = 0.0;
            return Ok(());
        }
        if self.queue.iter().any(|s| s.id == id) {
            return self.abort(id);
        }
        Err(EngineError::exec(format!("no such query {id}")))
    }

    /// Stop admitting scheduled arrivals (the paper's maintenance operation
    /// O1: "no new queries are allowed to enter the RDBMS"). Pending
    /// scheduled arrivals are dropped; queued queries stay queued.
    pub fn close_admission(&mut self) {
        self.scheduled.clear();
    }

    /// Snapshot for progress indicators.
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot {
            time: self.clock,
            rate: self.cfg.rate,
            running: self
                .running
                .iter()
                .map(|s| {
                    let p = s.job.progress();
                    QueryState {
                        id: s.id,
                        name: Arc::clone(&s.name),
                        weight: s.weight,
                        arrived: s.arrived,
                        started: s.started.unwrap_or(s.arrived),
                        done: p.done,
                        remaining: p.remaining,
                        initial_estimate: p.initial_estimate,
                        observed_speed: s.monitor.speed(),
                        blocked: s.blocked,
                        rolling_back: s.rolling_back.is_some(),
                    }
                })
                .collect(),
            queued: self
                .queue
                .iter()
                .map(|s| QueuedState {
                    id: s.id,
                    name: Arc::clone(&s.name),
                    weight: s.weight,
                    arrived: s.arrived,
                    est_cost: s.job.progress().remaining,
                })
                .collect(),
        }
    }

    /// Queries that have left the system so far.
    pub fn finished(&self) -> &[FinishedQuery] {
        &self.finished
    }

    /// The finished record for `id`, if it has left the system.
    pub fn finished_record(&self, id: QueryId) -> Option<&FinishedQuery> {
        self.finished_index.get(&id).map(|&i| &self.finished[i])
    }

    /// Ids of currently running (including blocked) queries.
    pub fn running_ids(&self) -> Vec<QueryId> {
        self.running.iter().map(|s| s.id).collect()
    }

    /// Ids of currently queued queries, front first.
    pub fn queued_ids(&self) -> Vec<QueryId> {
        self.queue.iter().map(|s| s.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SyntheticJob;

    /// A whole simulated system (jobs included) moves into a worker thread
    /// in the parallel experiment harness.
    #[test]
    fn system_is_send() {
        fn send<T: Send>() {}
        send::<System>();
    }

    fn cfg(rate: f64, quantum: f64) -> SystemConfig {
        SystemConfig {
            rate,
            quantum_units: quantum,
            admission: AdmissionPolicy::Unlimited,
            speed_tau: 5.0,
            rate_model: RateModel::Constant,
            step_mode: StepMode::Quantum,
        }
    }

    /// Closed-form GPS finish times for equal weights: with costs sorted
    /// ascending c1..cn, query i finishes at Σ_{k≤i} (c_k − c_{k−1})·(n−k+1)/C.
    fn gps_finish_times(costs: &[f64], rate: f64) -> Vec<f64> {
        let mut sorted = costs.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mut t = 0.0;
        let mut prev = 0.0;
        let mut out = Vec::new();
        for (k, c) in sorted.iter().enumerate() {
            t += (c - prev) * (n - k) as f64 / rate;
            prev = *c;
            out.push(t);
        }
        out
    }

    #[test]
    fn equal_weight_sharing_matches_gps_closed_form() {
        let mut sys = System::new(cfg(100.0, 4.0));
        let costs = [400.0, 800.0, 1200.0, 1600.0];
        let ids: Vec<QueryId> = costs
            .iter()
            .map(|c| sys.submit(format!("q{c}"), Box::new(SyntheticJob::new(*c as u64)), 1.0))
            .collect();
        sys.run_until_idle(1e9).unwrap();
        let expected = gps_finish_times(&costs, 100.0);
        for (i, id) in ids.iter().enumerate() {
            let f = sys.finished_record(*id).unwrap();
            let err = (f.finished - expected[i]).abs();
            assert!(
                err < 0.5,
                "query {i}: finished {} vs GPS {} (err {err})",
                f.finished,
                expected[i]
            );
        }
    }

    #[test]
    fn event_driven_matches_gps_closed_form_exactly() {
        let mut c = cfg(100.0, 4.0);
        c.step_mode = StepMode::EventDriven;
        let mut sys = System::new(c);
        let costs = [400.0, 800.0, 1200.0, 1600.0];
        let ids: Vec<QueryId> = costs
            .iter()
            .map(|c| sys.submit(format!("q{c}"), Box::new(SyntheticJob::new(*c as u64)), 1.0))
            .collect();
        sys.run_until_idle(1e9).unwrap();
        let expected = gps_finish_times(&costs, 100.0);
        for (i, id) in ids.iter().enumerate() {
            let f = sys.finished_record(*id).unwrap();
            let err = (f.finished - expected[i]).abs();
            // Event jumps land on completion instants up to the epsilon
            // nudge, far inside even a tight quantum's discretization.
            assert!(
                err < 1e-6,
                "query {i}: finished {} vs GPS {} (err {err})",
                f.finished,
                expected[i]
            );
        }
    }

    #[test]
    fn event_driven_uses_few_steps() {
        let mut c = cfg(100.0, 4.0);
        c.step_mode = StepMode::EventDriven;
        let mut sys = System::new(c);
        for i in 0..4u64 {
            sys.submit(
                format!("q{i}"),
                Box::new(SyntheticJob::new(1000 * (i + 1))),
                1.0,
            );
        }
        let mut steps = 0;
        while sys.has_work() {
            sys.step().unwrap();
            steps += 1;
            assert!(steps < 100, "event mode should not grind quanta");
        }
        // One jump per completion (plus slack for epsilon re-steps).
        assert!(steps <= 12, "took {steps} steps");
        assert_eq!(sys.finished().len(), 4);
    }

    #[test]
    fn event_driven_respects_scheduled_arrivals() {
        let mut c = cfg(100.0, 4.0);
        c.step_mode = StepMode::EventDriven;
        let mut sys = System::new(c);
        let a = sys.submit("a", Box::new(SyntheticJob::new(1000)), 1.0);
        let b = sys.schedule(2.0, "b", Box::new(SyntheticJob::new(400)), 1.0);
        sys.run_until_idle(1e9).unwrap();
        // a runs alone for 2s (200 units), then shares: b done at
        // 2 + 2·400/100 = 10 ⇒ wait, b needs 400 at 50 U/s = 8s ⇒ t=10;
        // a: 1000 = 200 + 50·8 + 100·Δ ⇒ Δ = 4 ⇒ t=14.
        let fa = sys.finished_record(a).unwrap().finished;
        let fb = sys.finished_record(b).unwrap().finished;
        assert!((fb - 10.0).abs() < 1e-6, "b at {fb}");
        assert!((fa - 14.0).abs() < 1e-6, "a at {fa}");
    }

    #[test]
    fn step_until_pins_clock_to_the_boundary() {
        let mut c = cfg(100.0, 4.0);
        c.step_mode = StepMode::EventDriven;
        let mut sys = System::new(c);
        sys.submit("a", Box::new(SyntheticJob::new(100_000)), 1.0);
        sys.step_until(3.25).unwrap();
        assert_eq!(sys.now(), 3.25);
        let snap = sys.snapshot();
        assert!((snap.running[0].done - 325.0).abs() < 1.0);
    }

    #[test]
    fn weighted_sharing_speeds_up_heavy_queries() {
        let mut sys = System::new(cfg(100.0, 2.0));
        let heavy = sys.submit("heavy", Box::new(SyntheticJob::new(1000)), 3.0);
        let light = sys.submit("light", Box::new(SyntheticJob::new(1000)), 1.0);
        sys.run_until_idle(1e9).unwrap();
        let fh = sys.finished_record(heavy).unwrap().finished;
        let fl = sys.finished_record(light).unwrap().finished;
        assert!(fh < fl, "heavy should finish first");
        // Heavy runs at 75 U/s until done: 1000/75 ≈ 13.3 s.
        assert!((fh - 13.33).abs() < 0.5, "heavy finished at {fh}");
        // Light then catches up: total work 2000 at 100 U/s ⇒ 20 s.
        assert!((fl - 20.0).abs() < 0.5, "light finished at {fl}");
    }

    #[test]
    fn admission_queue_blocks_third_query() {
        let mut c = cfg(100.0, 4.0);
        c.admission = AdmissionPolicy::MaxConcurrent(2);
        let mut sys = System::new(c);
        let a = sys.submit("a", Box::new(SyntheticJob::new(500)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(100)), 1.0);
        let q = sys.submit("c", Box::new(SyntheticJob::new(100)), 1.0);
        assert_eq!(sys.running_ids(), vec![a, b]);
        assert_eq!(sys.queued_ids(), vec![q]);
        sys.run_until_idle(1e9).unwrap();
        // b finishes at 2·100/100 = 2s; c starts then.
        let fb = sys.finished_record(b).unwrap().finished;
        let sc = sys.finished_record(q).unwrap().started.unwrap();
        assert!((fb - 2.0).abs() < 0.2);
        assert!((sc - fb).abs() < 0.2, "c started at {sc}, b finished {fb}");
    }

    #[test]
    fn scheduled_arrivals_enter_at_their_time() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.submit("now", Box::new(SyntheticJob::new(1000)), 1.0);
        let later = sys.schedule(5.0, "later", Box::new(SyntheticJob::new(100)), 1.0);
        sys.run_until(4.9).unwrap();
        assert_eq!(sys.running_ids().len(), 1);
        sys.run_until(5.5).unwrap();
        assert_eq!(sys.running_ids().len(), 2);
        let snap = sys.snapshot();
        let st = snap.running.iter().find(|r| r.id == later).unwrap();
        assert!((st.started - 5.0).abs() < 0.1);
    }

    #[test]
    fn scheduled_arrivals_pop_in_time_order() {
        let mut sys = System::new(cfg(100.0, 4.0));
        // Insert out of order; the heap must deliver earliest-first.
        let c = sys.schedule(9.0, "c", Box::new(SyntheticJob::new(10)), 1.0);
        let a = sys.schedule(1.0, "a", Box::new(SyntheticJob::new(10)), 1.0);
        let b = sys.schedule(5.0, "b", Box::new(SyntheticJob::new(10)), 1.0);
        sys.run_until_idle(1e9).unwrap();
        let at = |id| sys.finished_record(id).unwrap().started.unwrap();
        assert!((at(a) - 1.0).abs() < 1e-9);
        assert!((at(b) - 5.0).abs() < 0.2);
        assert!((at(c) - 9.0).abs() < 0.2);
    }

    #[test]
    fn idle_system_fast_forwards_to_arrival() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.schedule(100.0, "far", Box::new(SyntheticJob::new(50)), 1.0);
        sys.run_until_idle(1e9).unwrap();
        let f = &sys.finished()[0];
        assert!((f.started.unwrap() - 100.0).abs() < 1e-9);
        assert!((f.finished - 100.5).abs() < 0.1);
    }

    #[test]
    fn block_and_resume_change_completion_order() {
        let mut sys = System::new(cfg(100.0, 2.0));
        let a = sys.submit("a", Box::new(SyntheticJob::new(500)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(500)), 1.0);
        sys.block(a).unwrap();
        sys.run_until(4.0).unwrap();
        // b ran alone at full speed: ~400 units done; a none.
        let snap = sys.snapshot();
        let sa = snap.running.iter().find(|r| r.id == a).unwrap();
        let sb = snap.running.iter().find(|r| r.id == b).unwrap();
        assert_eq!(sa.done, 0.0);
        assert!(sb.done > 350.0);
        assert!(sa.blocked);
        sys.resume(a).unwrap();
        sys.run_until_idle(1e9).unwrap();
        let fa = sys.finished_record(a).unwrap().finished;
        let fb = sys.finished_record(b).unwrap().finished;
        assert!(fb < fa);
    }

    #[test]
    fn abort_frees_a_slot_and_records_remaining() {
        let mut c = cfg(100.0, 4.0);
        c.admission = AdmissionPolicy::MaxConcurrent(1);
        let mut sys = System::new(c);
        let a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(100)), 1.0);
        sys.run_until(10.0).unwrap();
        sys.abort(a).unwrap();
        let fa = sys.finished_record(a).unwrap();
        assert_eq!(fa.kind, FinishKind::Aborted);
        assert!(fa.units_done > 900.0 && fa.remaining_at_end > 8000.0);
        sys.run_until_idle(1e9).unwrap();
        let fb = sys.finished_record(b).unwrap();
        assert_eq!(fb.kind, FinishKind::Completed);
        assert!(fb.started.unwrap() >= 10.0);
    }

    #[test]
    fn abort_queued_query() {
        let mut c = cfg(100.0, 4.0);
        c.admission = AdmissionPolicy::MaxConcurrent(1);
        let mut sys = System::new(c);
        let _a = sys.submit("a", Box::new(SyntheticJob::new(1000)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(100)), 1.0);
        sys.abort(b).unwrap();
        let fb = sys.finished_record(b).unwrap();
        assert_eq!(fb.kind, FinishKind::Aborted);
        assert!(fb.started.is_none());
        assert_eq!(sys.queued_ids().len(), 0);
    }

    #[test]
    fn snapshot_reports_speeds_that_sum_to_rate() {
        let mut sys = System::new(cfg(100.0, 2.0));
        for i in 0..4 {
            sys.submit(format!("q{i}"), Box::new(SyntheticJob::new(100_000)), 1.0);
        }
        sys.run_until(30.0).unwrap();
        let snap = sys.snapshot();
        let total: f64 = snap
            .running
            .iter()
            .map(|r| r.observed_speed.unwrap_or(0.0))
            .sum();
        assert!((total - 100.0).abs() < 2.0, "total speed = {total}");
    }

    #[test]
    fn close_admission_drops_future_arrivals() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.submit("now", Box::new(SyntheticJob::new(100)), 1.0);
        sys.schedule(5.0, "later", Box::new(SyntheticJob::new(100)), 1.0);
        sys.close_admission();
        sys.run_until_idle(1e9).unwrap();
        assert_eq!(sys.finished().len(), 1);
    }

    #[test]
    fn abort_with_overhead_occupies_the_system_with_rollback_work() {
        let mut sys = System::new(cfg(100.0, 4.0));
        let a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        let b = sys.submit("b", Box::new(SyntheticJob::new(1_000)), 1.0);
        sys.run_until(2.0).unwrap();
        // Abort `a` with 500 units of rollback: it keeps sharing capacity.
        sys.abort_with_overhead(a, 500).unwrap();
        let snap = sys.snapshot();
        let ra = snap.running.iter().find(|q| q.id == a).unwrap();
        assert!(ra.rolling_back);
        assert!((ra.remaining - 500.0).abs() < 1e-9);
        sys.run_until_idle(1e9).unwrap();
        let fa = sys.finished_record(a).unwrap();
        assert_eq!(fa.kind, FinishKind::Aborted);
        // b finishes later than it would have if the abort freed the slot
        // instantly: total work after abort = 500 + (1000 - done_b).
        let fb = sys.finished_record(b).unwrap();
        assert!(fb.finished > 10.0, "b at {}", fb.finished);
        // Rollback completes before b's remaining work does.
        assert!(fa.finished <= fb.finished);
    }

    #[test]
    fn abort_with_zero_overhead_is_plain_abort() {
        let mut sys = System::new(cfg(100.0, 4.0));
        let a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        sys.run_until(1.0).unwrap();
        sys.abort_with_overhead(a, 0).unwrap();
        assert!(sys.running_ids().is_empty());
        assert_eq!(sys.finished_record(a).unwrap().kind, FinishKind::Aborted);
    }

    #[test]
    fn double_rollback_abort_is_an_error() {
        let mut sys = System::new(cfg(100.0, 4.0));
        let a = sys.submit("a", Box::new(SyntheticJob::new(10_000)), 1.0);
        sys.run_until(1.0).unwrap();
        sys.abort_with_overhead(a, 500).unwrap();
        assert!(sys.abort_with_overhead(a, 500).is_err());
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn zero_weight_submission_panics() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.submit("a", Box::new(SyntheticJob::new(10)), 0.0);
    }

    #[test]
    fn contention_model_slows_concurrent_execution() {
        // Ten equal jobs under contention: total throughput drops to
        // C/(1+0.1·9) = C/1.9 while all ten run, so the makespan exceeds
        // the constant-rate makespan substantially.
        let total: u64 = 10 * 1000;
        let make_sys = |model: RateModel| {
            let mut c = cfg(100.0, 4.0);
            c.rate_model = model;
            let mut sys = System::new(c);
            for _ in 0..10 {
                sys.submit("q", Box::new(SyntheticJob::new(1000)), 1.0);
            }
            sys
        };
        let mut constant = make_sys(RateModel::Constant);
        constant.run_until_idle(1e9).unwrap();
        let t_const = constant.now();
        assert!((t_const - total as f64 / 100.0).abs() < 1.0);

        let mut contended = make_sys(RateModel::Contention { alpha: 0.1 });
        contended.run_until_idle(1e9).unwrap();
        let t_cont = contended.now();
        assert!(
            t_cont > 1.5 * t_const,
            "contended {t_cont} vs constant {t_const}"
        );
    }

    #[test]
    fn contention_model_event_mode_agrees_with_quantum() {
        let run = |mode: StepMode| {
            let mut c = cfg(100.0, 1.0);
            c.rate_model = RateModel::Contention { alpha: 0.1 };
            c.step_mode = mode;
            let mut sys = System::new(c);
            for i in 0..5u64 {
                sys.submit(
                    format!("q{i}"),
                    Box::new(SyntheticJob::new(500 * (i + 1))),
                    1.0,
                );
            }
            sys.run_until_idle(1e9).unwrap();
            sys.now()
        };
        let quantum = run(StepMode::Quantum);
        let event = run(StepMode::EventDriven);
        assert!(
            (quantum - event).abs() < 0.1,
            "quantum {quantum} vs event {event}"
        );
    }

    #[test]
    fn effective_rate_formula() {
        assert_eq!(RateModel::Constant.effective_rate(100.0, 10), 100.0);
        let m = RateModel::Contention { alpha: 0.05 };
        assert_eq!(m.effective_rate(100.0, 1), 100.0);
        assert!((m.effective_rate(100.0, 11) - 100.0 / 1.5).abs() < 1e-9);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sys = System::new(cfg(100.0, 4.0));
        sys.run_until(42.0).unwrap();
        assert!((sys.now() - 42.0).abs() < 1e-9);
    }
}
