//! Model-based tests for the calendar queue: arbitrary interleavings of
//! insert / cancel / advance must dequeue in exactly the order a reference
//! `BinaryHeap` model produces — same times, same FIFO tie-breaking — and a
//! full `System` checkpoint at n = 10^5 must round-trip bit-identically.

// Test code: unwrap/expect on known-good fixtures is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use proptest::prelude::*;

use mqpi_sim::calendar::CalendarQueue;
use mqpi_sim::job::SyntheticJob;
use mqpi_sim::system::{StepMode, System, SystemConfig};
use mqpi_sim::AdmissionPolicy;

/// Reference model: a `BinaryHeap` ordered by `(at bits, id)` with lazy
/// cancellation. Trivially correct; the calendar must match it exactly.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    live: HashMap<u64, u64>, // id -> at bits
}

impl HeapModel {
    fn push(&mut self, at: f64, id: u64) {
        self.heap.push(Reverse((at.to_bits(), id)));
        self.live.insert(id, at.to_bits());
    }

    fn cancel(&mut self, id: u64) -> Option<f64> {
        self.live.remove(&id).map(f64::from_bits)
    }

    fn pop(&mut self) -> Option<(f64, u64)> {
        while let Some(Reverse((bits, id))) = self.heap.pop() {
            if self.live.get(&id) == Some(&bits) {
                self.live.remove(&id);
                return Some((f64::from_bits(bits), id));
            }
        }
        None
    }

    fn peek(&mut self) -> Option<(f64, u64)> {
        while let Some(&Reverse((bits, id))) = self.heap.peek() {
            if self.live.get(&id) == Some(&bits) {
                return Some((f64::from_bits(bits), id));
            }
            self.heap.pop();
        }
        None
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

#[derive(Debug, Clone)]
enum Op {
    /// Insert at one of a small set of times — duplicates are likely, which
    /// is the point: equal times must drain FIFO by id.
    Push(u8),
    Pop,
    /// Cancel a pseudo-randomly chosen live id.
    Cancel(u8),
    /// Pop everything due at or before one of the slot times.
    Advance(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        // The vendored proptest shim has no weight syntax; repeating the
        // push arm biases the mix toward inserts.
        prop_oneof![
            any::<u8>().prop_map(Op::Push),
            any::<u8>().prop_map(Op::Push),
            any::<u8>().prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Pop),
            any::<u8>().prop_map(Op::Cancel),
            any::<u8>().prop_map(Op::Advance),
        ],
        0..200,
    )
}

/// Time slots deliberately collide: 16 distinct values for 256 slot ids.
fn slot_time(slot: u8) -> f64 {
    f64::from(slot % 16) * 0.25
}

proptest! {
    #[test]
    fn calendar_matches_binary_heap_model(ops in arb_ops()) {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut model = HeapModel::default();
        let mut next_id = 0u64;
        let mut live_ids: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Op::Push(slot) => {
                    let at = slot_time(slot);
                    cal.push(at, next_id, next_id);
                    model.push(at, next_id);
                    live_ids.push(next_id);
                    next_id += 1;
                }
                Op::Pop => {
                    let got = cal.pop().map(|e| (e.at, e.id));
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                    if let Some((_, id)) = want {
                        live_ids.retain(|&l| l != id);
                    }
                }
                Op::Cancel(pick) => {
                    if live_ids.is_empty() {
                        continue;
                    }
                    let id = live_ids[usize::from(pick) % live_ids.len()];
                    let got = cal.cancel(id).map(|e| e.at);
                    let want = model.cancel(id);
                    prop_assert_eq!(got, want);
                    live_ids.retain(|&l| l != id);
                }
                Op::Advance(slot) => {
                    let until = slot_time(slot);
                    while cal.peek().is_some_and(|(at, _)| at <= until) {
                        let got = cal.pop().map(|e| (e.at, e.id));
                        let want = model.pop();
                        prop_assert_eq!(got, want);
                        if let Some((_, id)) = want {
                            live_ids.retain(|&l| l != id);
                        }
                    }
                    // The model must agree nothing else is due.
                    prop_assert!(!model.peek().is_some_and(|(at, _)| at <= until));
                }
            }
            prop_assert_eq!(cal.len(), model.len());
            prop_assert_eq!(cal.peek(), model.peek());
        }

        // Final drain: exact dequeue-order equality, ties FIFO by id.
        let mut last = None;
        while let Some(e) = cal.pop() {
            let want = model.pop();
            prop_assert_eq!(Some((e.at, e.id)), want);
            if let Some((pat, pid)) = last {
                prop_assert!((e.at, e.id) > (pat, pid) || (e.at == pat && e.id > pid));
            }
            last = Some((e.at, e.id));
        }
        prop_assert_eq!(model.pop(), None);
    }
}

/// Checkpoint round-trip at n = 10^5: restoring a mid-flight checkpoint
/// must reproduce the byte-identical checkpoint, and driving the original
/// and the restored system in lockstep must produce identical completions
/// and identical bytes again at the end.
#[test]
fn checkpoint_round_trip_at_1e5_is_bit_identical() {
    let n = 100_000usize;
    let rate = 1e5;
    let spacing = 950.0 / rate * 1.05;
    let mut sys = System::new(SystemConfig {
        rate,
        quantum_units: 16.0,
        admission: AdmissionPolicy::MaxConcurrent(256),
        speed_tau: 10.0,
        step_mode: StepMode::EventDriven,
        ..Default::default()
    });
    let name: Arc<str> = "ckpt".into();
    for i in 0..n {
        sys.schedule(
            i as f64 * spacing,
            Arc::clone(&name),
            Box::new(SyntheticJob::new(500 + (i as u64).wrapping_mul(37) % 900)),
            1.0,
        );
    }
    // Run into the steady state so the checkpoint captures a busy system:
    // running sessions, queued arrivals, and a non-trivial finished log.
    for _ in 0..20_000 {
        sys.step_discard().unwrap();
    }
    let bytes = sys.checkpoint().unwrap();
    let mut restored = System::restore(&bytes).unwrap();
    assert_eq!(
        restored.checkpoint().unwrap(),
        bytes,
        "restore(checkpoint(s)) must re-encode to the same bytes"
    );
    // Lockstep resume: identical completions step by step, identical bytes
    // at the end.
    for step in 0..20_000 {
        let a = sys.step().unwrap();
        let b = restored.step().unwrap();
        assert_eq!(a, b, "completion divergence at resumed step {step}");
        assert_eq!(sys.now().to_bits(), restored.now().to_bits());
    }
    assert_eq!(sys.checkpoint().unwrap(), restored.checkpoint().unwrap());
}
