//! Property-based tests for the fault-injection subsystem: arbitrary
//! seeded fault plans must never panic the scheduler, must leave every
//! snapshot value finite and non-negative, and must keep the
//! work-conservation ledger balanced across abort → rollback → retry.

// Test code: unwrap/expect on known-good fixtures is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use mqpi_sim::job::SyntheticJob;
use mqpi_sim::system::{ErrorPolicy, FinishKind, StepMode, System, SystemConfig};
use mqpi_sim::{AdmissionPolicy, FaultEvent, FaultKind, FaultMix, FaultPlan, RetryPolicy};

const HORIZON: f64 = 200.0;

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (0.05f64..8.0).prop_map(|factor| FaultKind::CostNoise { factor }),
        ((0.05f64..1.0), (0.1f64..20.0))
            .prop_map(|(factor, duration)| FaultKind::RateDip { factor, duration }),
        (0u64..300).prop_map(|overhead| FaultKind::AbortRetry { overhead }),
        ((1u32..6), (20u64..800)).prop_map(|(queries, cost)| FaultKind::Burst { queries, cost }),
        Just(FaultKind::PageFault),
    ]
}

fn arb_events() -> impl Strategy<Value = Vec<FaultEvent>> {
    prop::collection::vec(
        ((0.0f64..HORIZON), arb_kind()).prop_map(|(at, kind)| FaultEvent { at, kind }),
        0..24,
    )
}

fn arb_admission() -> impl Strategy<Value = AdmissionPolicy> {
    prop_oneof![
        Just(AdmissionPolicy::Unlimited),
        (1usize..5).prop_map(AdmissionPolicy::MaxConcurrent),
        ((1usize..4), (0usize..4))
            .prop_map(|(slots, queue)| AdmissionPolicy::Bounded { slots, queue }),
    ]
}

fn build(costs: &[u64], admission: AdmissionPolicy) -> System {
    let mut sys = System::new(SystemConfig {
        rate: 100.0,
        quantum_units: 8.0,
        admission,
        speed_tau: 10.0,
        step_mode: StepMode::Quantum,
        ..Default::default()
    });
    for (i, c) in costs.iter().enumerate() {
        sys.submit(format!("q{i}"), Box::new(SyntheticJob::new(*c)), 1.0);
    }
    sys
}

/// Drive the system to idle (bounded by wall-clock-ish step budget),
/// checking every snapshot along the way, and return the step count.
fn drive_and_check(sys: &mut System) -> Result<usize, TestCaseError> {
    let mut steps = 0usize;
    while sys.has_work() {
        let snap = sys.snapshot();
        prop_assert!(snap.time.is_finite() && snap.time >= 0.0);
        prop_assert!(snap.rate.is_finite() && snap.rate > 0.0);
        for r in &snap.running {
            prop_assert!(
                r.done.is_finite() && r.done >= 0.0,
                "done = {} for {}",
                r.done,
                r.id
            );
            prop_assert!(
                r.remaining.is_finite() && r.remaining >= 0.0,
                "remaining = {} for {}",
                r.remaining,
                r.id
            );
        }
        for q in &snap.queued {
            prop_assert!(q.est_cost.is_finite() && q.est_cost >= 0.0);
        }
        sys.step().map_err(|e| {
            TestCaseError::fail(format!("step returned an error under Isolate: {e}"))
        })?;
        steps += 1;
        prop_assert!(steps < 2_000_000, "runaway simulation");
    }
    Ok(steps)
}

/// The conservation ledger: everything executed is attributed to a live
/// session or a finished record (including rollback work).
fn assert_conservation(sys: &System) -> Result<(), TestCaseError> {
    let executed = sys.executed_units();
    let finished: f64 = sys
        .finished()
        .iter()
        .map(|f| f.units_done + f.rollback_units)
        .sum();
    let accounted = sys.live_units_done() + finished;
    prop_assert!(
        (executed - accounted).abs() <= 1e-6 * executed.max(1.0),
        "executed {executed} but accounted {accounted}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Generated fault plans of every kind, against every admission
    /// policy: no panics, no errors escaping Isolate, snapshots stay
    /// finite, the ledger balances, and leave-records are well-formed.
    #[test]
    fn arbitrary_generated_plans_degrade_gracefully(
        seed in any::<u64>(),
        per_kind in 0usize..5,
        costs in prop::collection::vec(100u64..3000, 2..8),
        admission in arb_admission(),
    ) {
        let mut sys = build(&costs, admission);
        sys.set_error_policy(ErrorPolicy::Isolate);
        sys.install_faults(FaultPlan::generate(seed, HORIZON, &FaultMix::even(per_kind)));
        drive_and_check(&mut sys)?;
        assert_conservation(&sys)?;
        for f in sys.finished() {
            prop_assert!(f.units_done >= 0.0 && f.rollback_units >= 0.0);
            prop_assert!(f.finished.is_finite() && f.finished >= f.arrived);
            if f.kind == FinishKind::Rejected {
                prop_assert!(f.started.is_none() && f.units_done == 0.0);
            }
        }
        if let Some(stats) = sys.fault_stats() {
            prop_assert!(stats.injected + stats.skipped <= 5 * per_kind as u64);
        }
    }

    /// Hand-rolled (not generator-sampled) event lists stretch parameters
    /// beyond FaultMix's ranges; the system must still never panic or
    /// report a non-finite value.
    #[test]
    fn arbitrary_event_lists_never_panic(
        events in arb_events(),
        seed in any::<u64>(),
        costs in prop::collection::vec(100u64..2000, 1..6),
    ) {
        let mut sys = build(&costs, AdmissionPolicy::MaxConcurrent(3));
        sys.set_error_policy(ErrorPolicy::Isolate);
        sys.install_faults(FaultPlan::new(events, seed, RetryPolicy::default()));
        drive_and_check(&mut sys)?;
        assert_conservation(&sys)?;
    }

    /// Work conservation across the full abort_with_overhead → rollback →
    /// retry path, driven purely by AbortRetry faults.
    #[test]
    fn conservation_across_abort_rollback_retry(
        seed in any::<u64>(),
        overheads in prop::collection::vec(0u64..400, 1..8),
        costs in prop::collection::vec(500u64..3000, 2..6),
    ) {
        let events: Vec<FaultEvent> = overheads
            .iter()
            .enumerate()
            .map(|(i, &overhead)| FaultEvent {
                at: 2.0 + 3.0 * i as f64,
                kind: FaultKind::AbortRetry { overhead },
            })
            .collect();
        let n_faults = events.len() as u64;
        let mut sys = build(&costs, AdmissionPolicy::Unlimited);
        sys.set_error_policy(ErrorPolicy::Isolate);
        sys.install_faults(FaultPlan::new(events, seed, RetryPolicy::default()));
        drive_and_check(&mut sys)?;
        assert_conservation(&sys)?;

        let stats = sys.fault_stats().expect("plan installed");
        prop_assert_eq!(stats.aborts + stats.skipped, n_faults);
        // Every applied abort leaves an Aborted record, and every retry
        // chain either completed or exhausted its budget.
        let aborted = sys
            .finished()
            .iter()
            .filter(|f| f.kind == FinishKind::Aborted)
            .count() as u64;
        prop_assert_eq!(aborted, stats.aborts);
        prop_assert!(stats.retries_scheduled <= stats.aborts * u64::from(RetryPolicy::default().max_attempts));
        // All original work eventually completes unless a chain ran dry.
        if stats.retries_exhausted == 0 && stats.aborts > 0 {
            let completed = sys
                .finished()
                .iter()
                .filter(|f| f.kind == FinishKind::Completed)
                .count();
            prop_assert_eq!(completed, costs.len());
        }
    }

    /// The same plan replayed twice is bit-identical — injector RNG and
    /// scheduler are fully deterministic.
    #[test]
    fn fault_runs_are_reproducible(
        seed in any::<u64>(),
        costs in prop::collection::vec(100u64..2000, 2..6),
    ) {
        let run = || {
            let mut sys = build(&costs, AdmissionPolicy::MaxConcurrent(2));
            sys.set_error_policy(ErrorPolicy::Isolate);
            sys.install_faults(FaultPlan::generate(seed, HORIZON, &FaultMix::even(3)));
            sys.run_until_idle(1e9).unwrap();
            (
                format!("{:?}", sys.finished()),
                format!("{:?}", sys.fault_log()),
                format!("{:?}", sys.fault_stats()),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
