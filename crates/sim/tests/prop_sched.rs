//! Property-based tests for the scheduler: the discrete quantum scheduler
//! must track the GPS fluid ideal, conserve work, and honor admission
//! limits.

// Test code: unwrap/expect on known-good fixtures is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;

use mqpi_sim::job::SyntheticJob;
use mqpi_sim::system::{StepMode, System, SystemConfig};
use mqpi_sim::AdmissionPolicy;

fn arb_costs(max_n: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(50u64..5000, 1..max_n)
}

/// GPS finish times for weighted queries (reference implementation,
/// independent of mqpi-core).
fn gps_times(jobs: &[(u64, f64)], rate: f64) -> Vec<f64> {
    let n = jobs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (jobs[a].0 as f64 / jobs[a].1).total_cmp(&(jobs[b].0 as f64 / jobs[b].1))
    });
    let mut out = vec![0.0; n];
    let mut t = 0.0;
    let mut d_prev = 0.0;
    let mut suffix_w: f64 = jobs.iter().map(|(_, w)| *w).sum();
    for &k in &order {
        let d = jobs[k].0 as f64 / jobs[k].1;
        t += (d - d_prev) * suffix_w / rate;
        d_prev = d;
        out[k] = t;
        suffix_w -= jobs[k].1;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scheduler completion times converge to GPS within quantum tolerance.
    #[test]
    fn scheduler_tracks_gps(costs in arb_costs(8), wsel in prop::collection::vec(0usize..3, 8)) {
        let weights = [1.0, 2.0, 4.0];
        let jobs: Vec<(u64, f64)> = costs
            .iter()
            .enumerate()
            .map(|(i, c)| (*c, weights[wsel[i % wsel.len()]]))
            .collect();
        let rate = 100.0;
        let mut sys = System::new(SystemConfig {
            rate,
            quantum_units: 2.0,
            ..Default::default()
        });
        let ids: Vec<u64> = jobs
            .iter()
            .map(|(c, w)| sys.submit("q", Box::new(SyntheticJob::new(*c)), *w))
            .collect();
        sys.run_until_idle(1e9).unwrap();
        let expected = gps_times(&jobs, rate);
        // Tolerance: a few quanta of slack per queue position.
        let tol = 2.0 * (jobs.len() as f64) * 2.0 / rate + 0.5;
        for (id, exp) in ids.iter().zip(&expected) {
            let got = sys.finished_record(*id).unwrap().finished;
            prop_assert!(
                (got - exp).abs() < tol,
                "finish {} vs GPS {} (tol {})",
                got, exp, tol
            );
        }
    }

    /// Work conservation: total units done equals total job cost, and the
    /// makespan equals total work / rate.
    #[test]
    fn work_is_conserved(costs in arb_costs(10)) {
        let rate = 50.0;
        let mut sys = System::new(SystemConfig {
            rate,
            quantum_units: 4.0,
            ..Default::default()
        });
        for c in &costs {
            sys.submit("q", Box::new(SyntheticJob::new(*c)), 1.0);
        }
        sys.run_until_idle(1e9).unwrap();
        let total_done: f64 = sys.finished().iter().map(|f| f.units_done).sum();
        let total_cost: f64 = costs.iter().map(|c| *c as f64).sum();
        prop_assert!((total_done - total_cost).abs() < 1e-9);
        let makespan = sys
            .finished()
            .iter()
            .map(|f| f.finished)
            .fold(0.0, f64::max);
        prop_assert!((makespan - total_cost / rate).abs() < 1.0);
    }

    /// The admission limit is never violated, and queries start in FIFO
    /// order.
    #[test]
    fn admission_limit_holds(costs in arb_costs(12), slots in 1usize..4) {
        let mut sys = System::new(SystemConfig {
            rate: 100.0,
            quantum_units: 4.0,
            admission: AdmissionPolicy::MaxConcurrent(slots),
            ..Default::default()
        });
        let ids: Vec<u64> = costs
            .iter()
            .map(|c| sys.submit("q", Box::new(SyntheticJob::new(*c)), 1.0))
            .collect();
        while sys.has_work() {
            prop_assert!(sys.running_ids().len() <= slots);
            sys.step().unwrap();
        }
        // FIFO starts.
        let mut starts: Vec<(u64, f64)> = ids
            .iter()
            .map(|id| (*id, sys.finished_record(*id).unwrap().started.unwrap()))
            .collect();
        starts.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let started_order: Vec<u64> = starts.iter().map(|(id, _)| *id).collect();
        prop_assert_eq!(started_order, ids);
    }

    /// The event-driven fast path reproduces quantum-mode finish times to
    /// within the quantum discretization slack, across random costs,
    /// weights, admission limits, and staggered arrivals. The event path is
    /// exact GPS; quantum mode drifts by up to one quantum per completion
    /// event ahead of a query, so the slack scales with queue position.
    #[test]
    fn event_driven_matches_quantum_within_one_quantum(
        costs in arb_costs(8),
        wsel in prop::collection::vec(0usize..3, 8),
        slots in 0usize..4,
        stagger in 0.0f64..10.0,
    ) {
        let weights = [1.0, 2.0, 4.0];
        let rate = 100.0;
        let quantum = 2.0;
        let admission = if slots == 0 {
            AdmissionPolicy::Unlimited
        } else {
            AdmissionPolicy::MaxConcurrent(slots)
        };
        let run = |mode: StepMode| {
            let mut sys = System::new(SystemConfig {
                rate,
                quantum_units: quantum,
                admission,
                step_mode: mode,
                ..Default::default()
            });
            let ids: Vec<u64> = costs
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let w = weights[wsel[i % wsel.len()]];
                    if i % 2 == 0 {
                        sys.submit("q", Box::new(SyntheticJob::new(*c)), w)
                    } else {
                        sys.schedule(stagger * i as f64, "q", Box::new(SyntheticJob::new(*c)), w)
                    }
                })
                .collect();
            sys.run_until_idle(1e9).unwrap();
            ids.iter()
                .map(|id| sys.finished_record(*id).unwrap().finished)
                .collect::<Vec<f64>>()
        };
        let q_times = run(StepMode::Quantum);
        let e_times = run(StepMode::EventDriven);
        // One quantum of work at full rate per completion event ahead of a
        // query, mirroring the scheduler_tracks_gps tolerance.
        let tol = (costs.len() as f64 + 1.0) * quantum / rate + 1e-6;
        for (i, (q, e)) in q_times.iter().zip(&e_times).enumerate() {
            prop_assert!(
                (q - e).abs() < tol,
                "query {}: quantum {} vs event {} (tol {})",
                i, q, e, tol
            );
        }
    }

    /// Blocking a query freezes its progress; aborting removes it.
    #[test]
    fn block_freezes_progress(costs in arb_costs(6), horizon in 1.0f64..20.0) {
        let mut sys = System::new(SystemConfig {
            rate: 100.0,
            quantum_units: 4.0,
            ..Default::default()
        });
        let ids: Vec<u64> = costs
            .iter()
            .map(|c| sys.submit("q", Box::new(SyntheticJob::new(*c + 10_000)), 1.0))
            .collect();
        sys.block(ids[0]).unwrap();
        sys.run_until(horizon).unwrap();
        let snap = sys.snapshot();
        let blocked = snap.running.iter().find(|q| q.id == ids[0]).unwrap();
        prop_assert_eq!(blocked.done, 0.0);
        prop_assert!(blocked.blocked);
        // Everyone else made progress.
        for q in snap.running.iter().filter(|q| q.id != ids[0]) {
            prop_assert!(q.done > 0.0);
        }
    }
}
