//! Pins the "allocation-free dispatch" contract of the data-oriented core:
//! once a system is warm, `step_discard` must perform **zero** heap
//! allocations on the steady-state path (grant + monitor update, nobody
//! arriving or finishing), and only amortized bookkeeping growth on the
//! full churn path. A counting `#[global_allocator]` makes the contract a
//! hard test instead of a code-review promise — clippy can lint explicit
//! `Vec::new` calls, but only the allocator sees what the optimizer
//! actually emits.

// Test code: unwrap/expect on known-good fixtures is fine here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System as SystemAlloc};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mqpi_sim::job::SyntheticJob;
use mqpi_sim::system::{StepMode, System, SystemConfig};
use mqpi_sim::AdmissionPolicy;

/// Counts every allocation the process makes. Frees are not counted: the
/// contract under test is "no new memory", not "no memory traffic".
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { SystemAlloc.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { SystemAlloc.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Steady-state quantum stepping — a resident population being granted
/// work and monitored, nobody arriving or finishing — must allocate
/// nothing at all.
#[test]
fn warm_quantum_steps_allocate_nothing() {
    let n = 512;
    let mut sys = System::new(SystemConfig {
        rate: 1e6,
        quantum_units: n as f64,
        admission: AdmissionPolicy::Unlimited,
        speed_tau: 10.0,
        step_mode: StepMode::Quantum,
        ..Default::default()
    });
    let name: Arc<str> = "alloc".into();
    for _ in 0..n {
        sys.submit(
            Arc::clone(&name),
            Box::new(SyntheticJob::new(u64::MAX / 2)),
            1.0,
        );
    }
    // Warm up: first steps may still grow scratch buffers to capacity.
    for _ in 0..32 {
        assert_eq!(sys.step_discard().unwrap(), 0);
    }
    let before = allocs();
    for _ in 0..1_000 {
        assert_eq!(sys.step_discard().unwrap(), 0);
    }
    let during = allocs() - before;
    assert_eq!(
        during, 0,
        "steady-state step_discard allocated {during} times over 1000 steps"
    );
}

/// The full churn path (arrivals admitted, queries finishing, records
/// appended) may grow long-lived containers, but only amortized: over a
/// long window the allocation count must stay far below one per step —
/// doubling growth of the finished log and scratch buffers, nothing
/// per-event. The pre-refactor core allocated several times per step here
/// (boxed sessions, per-id map entries, per-step result vectors).
#[test]
fn churn_steps_allocate_only_amortized_growth() {
    let n = 20_000usize;
    let rate = 1e5;
    let spacing = 950.0 / rate * 1.05;
    let mut sys = System::new(SystemConfig {
        rate,
        quantum_units: 16.0,
        admission: AdmissionPolicy::MaxConcurrent(256),
        speed_tau: 10.0,
        step_mode: StepMode::EventDriven,
        ..Default::default()
    });
    let name: Arc<str> = "alloc".into();
    for i in 0..n {
        sys.schedule(
            i as f64 * spacing,
            Arc::clone(&name),
            Box::new(SyntheticJob::new(500 + (i as u64).wrapping_mul(37) % 900)),
            1.0,
        );
    }
    // Warm up through the first chunk of arrivals and completions.
    for _ in 0..2_000 {
        sys.step_discard().unwrap();
    }
    let before = allocs();
    let mut steps = 0u64;
    while sys.has_work() && steps < 20_000 {
        sys.step_discard().unwrap();
        steps += 1;
    }
    let during = allocs() - before;
    assert!(steps >= 10_000, "workload too small to measure ({steps})");
    // Amortized growth of the finished log (one Vec doubling costs one
    // realloc) stays under a handful of allocations per thousand steps.
    assert!(
        during < steps / 100,
        "churn allocated {during} times over {steps} steps — dispatch is not allocation-free"
    );
}
