//! TPC-R-style test database (paper §5.1, Table 1).

use mqpi_engine::error::Result;
use mqpi_engine::{ColumnType, Database, Schema, Value};
use mqpi_sim::rng::Rng;

/// Largest part-table size class (the paper's NAQ experiment uses N = 50).
pub const MAX_SIZE: u64 = 50;

/// Configuration of the scaled data set.
#[derive(Debug, Clone, Copy)]
pub struct TpcrConfig {
    /// Rows in `lineitem` (paper: 24M; scaled default: 240k).
    pub lineitem_rows: u64,
    /// Average lineitem matches per partkey (paper: 30).
    pub matches_per_partkey: u64,
    /// ANALYZE sampling fraction — smaller = less precise optimizer
    /// statistics, as in PostgreSQL (§5.3 attributes PI error to them).
    pub analyze_fraction: f64,
    /// RNG seed for data generation.
    pub seed: u64,
    /// Largest part-table size class to materialize.
    pub max_size: u64,
}

impl Default for TpcrConfig {
    fn default() -> Self {
        TpcrConfig {
            lineitem_rows: 240_000,
            matches_per_partkey: 30,
            analyze_fraction: 0.1,
            seed: 42,
            max_size: MAX_SIZE,
        }
    }
}

/// The built database plus generation metadata.
pub struct TpcrDb {
    /// The engine database with `lineitem` and all `part_s<k>` tables.
    pub db: Database,
    /// Number of distinct partkey values in `lineitem`.
    pub partkey_domain: u64,
    /// The configuration it was built with.
    pub config: TpcrConfig,
}

impl TpcrDb {
    /// Build the full test data set: `lineitem` with an index on `partkey`,
    /// and one `part_s<k>` table per size class `k = 1..=max_size` with
    /// `10·k` rows of distinct random partkeys.
    pub fn build(config: TpcrConfig) -> Result<TpcrDb> {
        let mut rng = Rng::seed_from_u64(config.seed);
        let mut db = Database::new();
        let domain = (config.lineitem_rows / config.matches_per_partkey).max(1);

        db.create_table(
            "lineitem",
            Schema::from_pairs(&[
                ("partkey", ColumnType::Int),
                ("quantity", ColumnType::Int),
                ("extendedprice", ColumnType::Float),
                ("comment", ColumnType::Str),
            ])?,
        )?;
        // Per-partkey unit price; extendedprice = quantity × unit price.
        // Insert in shuffled order so matches are scattered across pages —
        // that's what makes an unclustered probe cost ~1 page per match.
        let mut keys: Vec<u64> = (0..config.lineitem_rows).map(|i| i % domain).collect();
        // Fisher-Yates shuffle.
        for i in (1..keys.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            keys.swap(i, j);
        }
        let comment = "x".repeat(60);
        let mut batch = Vec::with_capacity(10_000);
        for key in keys {
            let unit_price = 1.0 + (key % 97) as f64;
            let quantity = 1 + rng.below(50) as i64;
            batch.push(vec![
                Value::Int(key as i64),
                Value::Int(quantity),
                Value::Float(unit_price * quantity as f64),
                Value::Str(comment.clone()),
            ]);
            if batch.len() == 10_000 {
                db.insert("lineitem", &batch)?;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            db.insert("lineitem", &batch)?;
        }
        db.create_index("lineitem", "partkey")?;
        db.analyze_sampled("lineitem", config.analyze_fraction)?;

        for k in 1..=config.max_size {
            let name = part_table_name(k);
            db.create_table(
                &name,
                Schema::from_pairs(&[
                    ("partkey", ColumnType::Int),
                    ("retailprice", ColumnType::Float),
                    ("name", ColumnType::Str),
                ])?,
            )?;
            let rows = distinct_partkeys(&mut rng, 10 * k, domain)
                .into_iter()
                .map(|key| {
                    // Retail price tracks the unit price so the paper's
                    // "25% below retail" predicate has moderate selectivity.
                    let unit_price = 1.0 + (key % 97) as f64;
                    let retail = unit_price * rng.range_f64(1.0, 1.8);
                    vec![
                        Value::Int(key as i64),
                        Value::Float(retail),
                        Value::Str(format!("part-{key}")),
                    ]
                })
                .collect::<Vec<_>>();
            db.insert(&name, &rows)?;
            db.analyze(&name)?;
        }
        Ok(TpcrDb {
            db,
            partkey_domain: domain,
            config,
        })
    }

    /// The paper's query `Q_k` (§5.1): parts selling ≥25% below retail.
    pub fn query_sql(&self, size: u64) -> String {
        assert!(
            (1..=self.config.max_size).contains(&size),
            "size class {size} not materialized"
        );
        format!(
            "select * from {} p where p.retailprice*0.75 > \
             (select sum(l.extendedprice)/sum(l.quantity) from lineitem l \
              where l.partkey = p.partkey)",
            part_table_name(size)
        )
    }
}

/// Name of the part table for size class `k` ("part_i" in the paper; we key
/// tables by size class since equal-size queries are interchangeable).
pub fn part_table_name(k: u64) -> String {
    format!("part_s{k}")
}

fn distinct_partkeys(rng: &mut Rng, count: u64, domain: u64) -> Vec<u64> {
    assert!(
        count <= domain,
        "cannot draw {count} distinct keys from {domain}"
    );
    let mut seen = std::collections::HashSet::with_capacity(count as usize);
    let mut out = Vec::with_capacity(count as usize);
    while (out.len() as u64) < count {
        let k = rng.below(domain);
        if seen.insert(k) {
            out.push(k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TpcrDb {
        TpcrDb::build(TpcrConfig {
            lineitem_rows: 24_000,
            matches_per_partkey: 30,
            analyze_fraction: 0.2,
            seed: 7,
            max_size: 10,
        })
        .unwrap()
    }

    #[test]
    fn builds_lineitem_and_part_tables() {
        let t = small();
        assert_eq!(t.partkey_domain, 800);
        let li = t.db.table("lineitem").unwrap();
        assert_eq!(li.heap.row_count(), 24_000);
        assert!(li.index_on(0).is_some());
        for k in 1..=10 {
            let p = t.db.table(&part_table_name(k)).unwrap();
            assert_eq!(p.heap.row_count(), 10 * k);
        }
    }

    #[test]
    fn query_plan_uses_correlated_index_probe() {
        let t = small();
        let p = t.db.prepare(&t.query_sql(5)).unwrap();
        let plan = p.explain();
        assert!(plan.contains("Filter"), "{plan}");
        // Cost should scale with size class: Q10 ≈ 2× Q5.
        let p10 = t.db.prepare(&t.query_sql(10)).unwrap();
        let ratio = p10.est_cost / p.est_cost;
        assert!((1.5..2.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn query_cost_is_dominated_by_probes() {
        let t = small();
        let p = t.db.prepare(&t.query_sql(4)).unwrap();
        // 40 outer rows × ≥30 units per probe.
        assert!(p.est_cost > 300.0, "est = {}", p.est_cost);
        let mut c = p.open().unwrap();
        let actual = c.run_to_completion().unwrap();
        // Actual cost: 40 probes × ~34-36 units; allow generous band but
        // require the right order of magnitude and ratio vs estimate.
        assert!(actual > 600 && actual < 3000, "actual = {actual}");
        let rel = p.est_cost / actual as f64;
        assert!((0.2..5.0).contains(&rel), "estimate off by {rel}x");
    }

    #[test]
    fn query_returns_some_but_not_all_parts() {
        let t = small();
        let rows = t.db.execute(&t.query_sql(8)).unwrap();
        assert!(!rows.is_empty(), "predicate too strict: 0 rows");
        assert!(
            rows.len() < 80,
            "predicate trivial: all {} rows",
            rows.len()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        let ra = a.db.execute(&a.query_sql(3)).unwrap();
        let rb = b.db.execute(&b.query_sql(3)).unwrap();
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "not materialized")]
    fn oversized_class_panics() {
        let t = small();
        let _ = t.query_sql(11);
    }
}
