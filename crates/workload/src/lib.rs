//! `mqpi-workload` — the paper's experimental workload (§5.1) and scenario
//! builders for every experiment (§5.2–5.3).
//!
//! The data follows the TPC-R-derived schema of Table 1, scaled ~1/100 so a
//! hundred-run experiment finishes in seconds of real time (the scaling is
//! documented in `DESIGN.md`; the Zipfian *cost distribution* across
//! queries, which drives every result, is preserved exactly):
//!
//! ```text
//! lineitem (partkey, quantity, extendedprice, comment)   240k rows, indexed
//! part_s<k> (partkey, retailprice, name)                 10·k rows, k = 1..=50
//! ```
//!
//! Each query `Q_k` is the paper's §5.1 query — "find parts selling for 25%
//! below suggested retail price" — a nested query whose correlated subquery
//! index-scans `lineitem` once per part row, so its cost is ∝ k.

pub mod scenario;
pub mod tpcr;

pub use scenario::{
    advance_fraction, average_query_cost, maintenance_scenario, mcq_scenario,
    mcq_scenario_weighted, naq_scenario, naq_scenario_sizes, query_job, scq_scenario, McqConfig,
    ScqConfig,
};
pub use tpcr::{TpcrConfig, TpcrDb, MAX_SIZE};
