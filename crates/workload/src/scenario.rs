//! Scenario builders for the paper's experiments (§5.2–5.3).
//!
//! Each function assembles a [`System`] in the exact starting state of one
//! experiment: MCQ (ten concurrent queries at random points of execution),
//! NAQ (three queries with a two-slot admission queue), SCQ (ten queries
//! plus a Poisson arrival stream), and the §5.3 maintenance scenario (a
//! warmed-up system whose running-query sizes follow the size-biased
//! distribution the paper derives).

use mqpi_engine::error::Result;
use mqpi_sim::job::{CursorJob, Job};
use mqpi_sim::rng::{Rng, Zipf};
use mqpi_sim::system::{QueryId, RateModel, System, SystemConfig};
use mqpi_sim::AdmissionPolicy;

use crate::tpcr::TpcrDb;

/// Create a [`CursorJob`] running the paper's query against size class
/// `size`.
pub fn query_job(db: &TpcrDb, size: u64) -> Result<CursorJob> {
    let prepared = db.db.prepare(&db.query_sql(size))?;
    Ok(CursorJob::new(prepared.open()?))
}

/// Run a job alone until roughly `frac` of its (refined) total work is done
/// — "at a random point of its execution" in the MCQ/SCQ setups. `frac` is
/// clamped to 0.9 so the query never completes here.
pub fn advance_fraction(job: &mut dyn Job, frac: f64) -> Result<()> {
    let frac = frac.clamp(0.0, 0.9);
    loop {
        let p = job.progress();
        let total = p.done + p.remaining;
        if p.finished || total <= 0.0 || p.done / total >= frac {
            return Ok(());
        }
        let chunk = ((total * frac - p.done).max(1.0)) as u64;
        job.run(chunk.min(256))?;
    }
}

/// MCQ experiment configuration (§5.2.1).
#[derive(Debug, Clone, Copy)]
pub struct McqConfig {
    /// Number of concurrent queries (paper: 10).
    pub n: usize,
    /// Zipf exponent of the size classes (paper: 1.2).
    pub zipf_a: f64,
    /// RNG seed.
    pub seed: u64,
    /// System processing rate `C`.
    pub rate: f64,
    /// Rate model (Assumption 1 knob; `Constant` reproduces the paper).
    pub rate_model: RateModel,
}

impl Default for McqConfig {
    fn default() -> Self {
        McqConfig {
            n: 10,
            zipf_a: 1.2,
            seed: 1,
            rate: 70.0,
            rate_model: RateModel::Constant,
        }
    }
}

/// Build the MCQ system: `n` queries of Zipfian size, each pre-advanced to
/// a uniform-random point of its execution, all running at time 0. Returns
/// the system and the query ids (in submission order, largest sizes first
/// in the id list's metadata — ids map 1:1 to the sizes vector also
/// returned).
pub fn mcq_scenario(db: &TpcrDb, cfg: McqConfig) -> Result<(System, Vec<(QueryId, u64)>)> {
    mcq_scenario_weighted(db, cfg, &[1.0])
}

/// MCQ variant with per-query scheduling weights drawn uniformly from
/// `weight_choices` (the paper's prototype has equal priorities; the
/// weighted variant exercises Assumption 3 beyond what PostgreSQL could).
pub fn mcq_scenario_weighted(
    db: &TpcrDb,
    cfg: McqConfig,
    weight_choices: &[f64],
) -> Result<(System, Vec<(QueryId, u64)>)> {
    assert!(!weight_choices.is_empty());
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(db.config.max_size as usize, cfg.zipf_a);
    let mut sys = System::new(SystemConfig {
        rate: cfg.rate,
        rate_model: cfg.rate_model,
        ..Default::default()
    });
    let mut out = Vec::with_capacity(cfg.n);
    for i in 0..cfg.n {
        let size = zipf.sample(&mut rng) as u64;
        let mut job = query_job(db, size)?;
        advance_fraction(&mut job, rng.range_f64(0.0, 0.9))?;
        let weight = weight_choices[rng.below(weight_choices.len() as u64) as usize];
        let id = sys.submit(format!("Q{i}(s{size},w{weight})"), Box::new(job), weight);
        out.push((id, size));
    }
    Ok((sys, out))
}

/// Build the NAQ system (§5.2.2): three queries with sizes 50, 10, 20 and
/// an admission limit of two. Q1 and Q2 start; Q3 waits in the queue.
/// Returns the system and `[Q1, Q2, Q3]` ids.
pub fn naq_scenario(db: &TpcrDb, rate: f64) -> Result<(System, [QueryId; 3])> {
    naq_scenario_sizes(db, rate, [50, 10, 20])
}

/// NAQ with explicit size classes (N1 must exceed N2 + N3 for the paper's
/// "Q1 outlives both" shape to hold).
pub fn naq_scenario_sizes(
    db: &TpcrDb,
    rate: f64,
    sizes: [u64; 3],
) -> Result<(System, [QueryId; 3])> {
    let mut sys = System::new(SystemConfig {
        rate,
        admission: AdmissionPolicy::MaxConcurrent(2),
        ..Default::default()
    });
    let q1 = sys.submit(
        format!("Q1(s{})", sizes[0]),
        Box::new(query_job(db, sizes[0])?),
        1.0,
    );
    let q2 = sys.submit(
        format!("Q2(s{})", sizes[1]),
        Box::new(query_job(db, sizes[1])?),
        1.0,
    );
    let q3 = sys.submit(
        format!("Q3(s{})", sizes[2]),
        Box::new(query_job(db, sizes[2])?),
        1.0,
    );
    Ok((sys, [q1, q2, q3]))
}

/// SCQ experiment configuration (§5.2.3).
#[derive(Debug, Clone, Copy)]
pub struct ScqConfig {
    /// Initially running queries (paper: 10).
    pub n_initial: usize,
    /// Zipf exponent (paper: 2.2).
    pub zipf_a: f64,
    /// True arrival rate λ of new queries.
    pub lambda: f64,
    /// RNG seed.
    pub seed: u64,
    /// System processing rate `C`.
    pub rate: f64,
    /// Memoized [`average_query_cost`] for this `db`/`zipf_a` pair. It only
    /// depends on those two, so sweep drivers compute it once and stamp it
    /// here instead of re-preparing every query class per run. `None` means
    /// "compute on demand".
    pub avg_cost: Option<f64>,
}

impl Default for ScqConfig {
    fn default() -> Self {
        ScqConfig {
            n_initial: 10,
            zipf_a: 2.2,
            lambda: 0.03,
            seed: 1,
            rate: 70.0,
            avg_cost: None,
        }
    }
}

/// Zipf-weighted average optimizer cost of a query — the c̄ a multi-query
/// PI would obtain from past statistics (§2.4).
pub fn average_query_cost(db: &TpcrDb, zipf_a: f64) -> Result<f64> {
    let zipf = Zipf::new(db.config.max_size as usize, zipf_a);
    // E[cost] = Σ P(k)·cost(k), with the optimizer's estimate standing in
    // for cost(k) — the PI only has statistics-level knowledge (§2.4).
    let mut mean = 0.0;
    let mut total_p = 0.0;
    for k in 1..=db.config.max_size {
        let p = zipf.pmf(k as usize);
        let est = db.db.prepare(&db.query_sql(k))?.est_cost;
        mean += p * est;
        total_p += p;
    }
    debug_assert!((total_p - 1.0).abs() < 1e-6);
    Ok(mean)
}

/// Build the SCQ system: `n_initial` queries at random execution points
/// plus a Poisson(λ) stream of future arrivals scheduled up to a horizon
/// that comfortably covers the initial queries' lifetimes. Returns the
/// system and the initial query ids with their sizes.
pub fn scq_scenario(db: &TpcrDb, cfg: ScqConfig) -> Result<(System, Vec<(QueryId, u64)>)> {
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let zipf = Zipf::new(db.config.max_size as usize, cfg.zipf_a);
    let mut sys = System::new(SystemConfig {
        rate: cfg.rate,
        ..Default::default()
    });
    let mut initial = Vec::with_capacity(cfg.n_initial);
    let mut total_initial_est = 0.0;
    for i in 0..cfg.n_initial {
        let size = zipf.sample(&mut rng) as u64;
        let mut job = query_job(db, size)?;
        advance_fraction(&mut job, rng.range_f64(0.0, 0.9))?;
        let p = job.progress();
        total_initial_est += p.remaining;
        let id = sys.submit(format!("Q{i}(s{size})"), Box::new(job), 1.0);
        initial.push((id, size));
    }
    // Horizon: long enough that arrivals keep coming while any initial
    // query is alive, even in moderately overloaded systems.
    let base = total_initial_est / cfg.rate;
    let avg_cost = match cfg.avg_cost {
        Some(c) => c,
        None => average_query_cost(db, cfg.zipf_a)?,
    };
    let spare = cfg.rate - cfg.lambda * avg_cost;
    let horizon = if spare > 0.05 * cfg.rate {
        (total_initial_est / spare) * 3.0 + 200.0
    } else {
        base * 25.0 + 200.0
    };
    if cfg.lambda > 0.0 {
        let mut t = 0.0;
        let mut k = 0;
        loop {
            t += rng.exp(cfg.lambda);
            if t > horizon || k > 5000 {
                break;
            }
            let size = zipf.sample(&mut rng) as u64;
            let job = query_job(db, size)?;
            sys.schedule(t, format!("A{k}(s{size})"), Box::new(job), 1.0);
            k += 1;
        }
    }
    Ok((sys, initial))
}

/// Build the §5.3 maintenance scenario: a ten-slot system fed with Zipfian
/// queries, warmed up until `warmup_finishes` queries have completed (each
/// completion immediately triggers a new submission, as in the paper).
/// The returned system is at the paper's random inspection time `rt` with
/// ten queries running whose sizes follow the size-biased distribution.
pub fn maintenance_scenario(
    db: &TpcrDb,
    zipf_a: f64,
    seed: u64,
    rate: f64,
    warmup_finishes: usize,
) -> Result<System> {
    let mut rng = Rng::seed_from_u64(seed);
    let zipf = Zipf::new(db.config.max_size as usize, zipf_a);
    let mut sys = System::new(SystemConfig {
        rate,
        ..Default::default()
    });
    for i in 0..10 {
        let size = zipf.sample(&mut rng) as u64;
        sys.submit(
            format!("W{i}(s{size})"),
            Box::new(query_job(db, size)?),
            1.0,
        );
    }
    let mut finishes = 0usize;
    let mut next = 10usize;
    while finishes < warmup_finishes {
        let done = sys.step()?;
        for _ in done {
            finishes += 1;
            let size = zipf.sample(&mut rng) as u64;
            sys.submit(
                format!("W{next}(s{size})"),
                Box::new(query_job(db, size)?),
                1.0,
            );
            next += 1;
        }
    }
    Ok(sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcr::TpcrConfig;

    fn small_db() -> TpcrDb {
        TpcrDb::build(TpcrConfig {
            lineitem_rows: 24_000,
            matches_per_partkey: 30,
            analyze_fraction: 0.2,
            seed: 3,
            max_size: 20,
        })
        .unwrap()
    }

    #[test]
    fn advance_fraction_moves_progress() {
        let db = small_db();
        let mut job = query_job(&db, 10).unwrap();
        advance_fraction(&mut job, 0.5).unwrap();
        let p = job.progress();
        assert!(!p.finished);
        let frac = p.done / (p.done + p.remaining);
        assert!((0.45..0.75).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn mcq_scenario_starts_n_queries() {
        let db = small_db();
        let (sys, ids) = mcq_scenario(
            &db,
            McqConfig {
                n: 6,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(ids.len(), 6);
        assert_eq!(sys.running_ids().len(), 6);
        assert_eq!(sys.now(), 0.0);
    }

    #[test]
    fn naq_scenario_queues_the_third_query() {
        let db = small_db();
        let (sys, [q1, q2, q3]) = naq_scenario_sizes(&db, 70.0, [20, 4, 8]).unwrap();
        assert_eq!(sys.running_ids(), vec![q1, q2]);
        assert_eq!(sys.queued_ids(), vec![q3]);
    }

    #[test]
    fn naq_runs_to_completion_in_expected_order() {
        let db = small_db();
        let (mut sys, [q1, q2, q3]) = naq_scenario_sizes(&db, 70.0, [20, 4, 8]).unwrap();
        sys.run_until_idle(1e7).unwrap();
        let f1 = sys.finished_record(q1).unwrap().finished;
        let f2 = sys.finished_record(q2).unwrap().finished;
        let f3 = sys.finished_record(q3).unwrap().finished;
        assert!(f2 < f3 && f3 < f1, "f1={f1} f2={f2} f3={f3}");
        // Q3 starts when Q2 finishes.
        let s3 = sys.finished_record(q3).unwrap().started.unwrap();
        assert!((s3 - f2).abs() < 1.0);
    }

    #[test]
    fn scq_scenario_schedules_arrivals() {
        let db = small_db();
        let (mut sys, initial) = scq_scenario(
            &db,
            ScqConfig {
                lambda: 0.05,
                seed: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(initial.len(), 10);
        // Run a while: more than the initial queries should have entered.
        sys.run_until(100.0).unwrap();
        let total_seen = sys.running_ids().len() + sys.finished().len();
        assert!(total_seen > 10, "no arrivals materialized");
    }

    #[test]
    fn maintenance_scenario_has_ten_running_after_warmup() {
        let db = small_db();
        let sys = maintenance_scenario(&db, 2.2, 9, 70.0, 5).unwrap();
        assert_eq!(sys.running_ids().len(), 10);
        assert!(sys.now() > 0.0);
        // A single step may finish several queries at once, so the warm-up
        // can overshoot its target slightly.
        let completed = sys
            .finished()
            .iter()
            .filter(|f| f.kind == mqpi_sim::FinishKind::Completed)
            .count();
        assert!(completed >= 5, "completed = {completed}");
    }

    #[test]
    fn average_query_cost_is_between_extremes() {
        let db = small_db();
        let avg = average_query_cost(&db, 2.2).unwrap();
        let c1 = db.db.prepare(&db.query_sql(1)).unwrap().est_cost;
        let cmax = db.db.prepare(&db.query_sql(20)).unwrap().est_cost;
        assert!(avg > c1 && avg < cmax, "avg {avg} not in ({c1}, {cmax})");
        // Zipf 2.2 is heavily skewed to small queries.
        assert!(avg < 0.3 * cmax);
    }
}
