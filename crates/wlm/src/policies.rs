//! The three maintenance decision methods compared in the paper's Fig. 11.
//!
//! All three perform operation O1 (close admission) and abort whatever is
//! unfinished at the maintenance time; they differ in what they abort *at
//! decision time* (operation O2′):
//!
//! * **No PI** — aborts nothing early; queries compete for resources until
//!   the deadline kills the stragglers.
//! * **Single-query PI** — estimates each query's remaining time as
//!   `c_i / s_i` from its own observed speed, and aborts the largest
//!   remaining-cost query while any estimate exceeds the deadline. Because
//!   a single-query PI extrapolates today's (crowded) speed, it
//!   systematically over-estimates large queries' remaining times and
//!   over-aborts — the pathology the paper demonstrates at `t = t_finish`.
//! * **Multi-query PI** — runs the §3.3 greedy knapsack on the fluid-model
//!   quiescent time.

use mqpi_sim::system::{QueryId, SystemSnapshot};

use crate::maintenance::{greedy_abort_plan, LostWorkCase};
use crate::speedup::QueryLoad;

/// Which decision method to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceMethod {
    /// Abort nothing at decision time (operations O1 + O2).
    NoPi,
    /// Single-query-PI-driven aborts.
    SinglePi,
    /// Multi-query-PI-driven aborts (§3.3 greedy).
    MultiPi,
}

/// Decide which queries to abort now, given maintenance `deadline` seconds
/// from now.
pub fn decide_aborts(
    method: MaintenanceMethod,
    snap: &SystemSnapshot,
    deadline: f64,
    case: LostWorkCase,
) -> Vec<QueryId> {
    match method {
        MaintenanceMethod::NoPi => Vec::new(),
        MaintenanceMethod::SinglePi => single_pi_aborts(snap, deadline),
        MaintenanceMethod::MultiPi => {
            let loads = QueryLoad::from_snapshot(snap);
            greedy_abort_plan(&loads, snap.rate, deadline, case).abort
        }
    }
}

/// Single-query-PI method: abort the largest estimated-remaining-cost query
/// while any query's `c/s` estimate exceeds the deadline. After each abort
/// the surviving queries' observed speeds are assumed to scale up by the
/// freed weight share (the most charitable reading of the method — without
/// it, the single PI would abort even more).
fn single_pi_aborts(snap: &SystemSnapshot, deadline: f64) -> Vec<QueryId> {
    struct Q {
        id: QueryId,
        cost: f64,
        speed: f64,
        weight: f64,
    }
    let total_w: f64 = snap
        .running
        .iter()
        .filter(|q| !q.blocked)
        .map(|q| q.weight)
        .sum();
    let mut alive: Vec<Q> = snap
        .running
        .iter()
        .filter(|q| !q.blocked)
        .map(|q| Q {
            id: q.id,
            cost: q.remaining,
            speed: q
                .observed_speed
                .unwrap_or(snap.rate * q.weight / total_w.max(1e-12))
                .max(1e-9),
            weight: q.weight,
        })
        .collect();
    let mut aborts = Vec::new();
    loop {
        let any_late = alive.iter().any(|q| q.cost / q.speed > deadline);
        if !any_late || alive.is_empty() {
            break;
        }
        // Abort the query with the largest estimated remaining cost.
        let (idx, _) = alive
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.cost.total_cmp(&b.cost))
            .unwrap();
        let victim = alive.remove(idx);
        aborts.push(victim.id);
        // Freed share speeds up the survivors.
        let w_rest: f64 = alive.iter().map(|q| q.weight).sum();
        if w_rest > 0.0 {
            let scale = (w_rest + victim.weight) / w_rest;
            for q in &mut alive {
                q.speed *= scale;
            }
        }
    }
    aborts
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqpi_sim::system::{QueryState, SystemSnapshot};

    fn state(id: u64, remaining: f64, done: f64, speed: f64) -> QueryState {
        QueryState {
            id,
            name: format!("q{id}").into(),
            weight: 1.0,
            arrived: 0.0,
            started: 0.0,
            done,
            remaining,
            initial_estimate: remaining,
            observed_speed: Some(speed),
            blocked: false,
            rolling_back: false,
        }
    }

    fn snap(running: Vec<QueryState>) -> SystemSnapshot {
        SystemSnapshot {
            time: 0.0,
            rate: 100.0,
            running,
            queued: vec![],
        }
    }

    #[test]
    fn no_pi_never_aborts_early() {
        let s = snap(vec![state(1, 1e6, 0.0, 10.0)]);
        assert!(
            decide_aborts(MaintenanceMethod::NoPi, &s, 1.0, LostWorkCase::TotalCost).is_empty()
        );
    }

    #[test]
    fn single_pi_overaborts_when_everything_could_finish() {
        // Ten equal queries of cost 100 at shared speed 10 each: every
        // estimate is 10s. True quiescent time = 1000/100 = 10s. With
        // deadline exactly 10s the multi-query method keeps everything…
        let qs: Vec<QueryState> = (1..=10).map(|i| state(i, 100.0, 50.0, 10.0)).collect();
        let s = snap(qs);
        let multi = decide_aborts(
            MaintenanceMethod::MultiPi,
            &s,
            10.0,
            LostWorkCase::TotalCost,
        );
        assert!(multi.is_empty());
        // …while a skewed instance trips the single-query method: the big
        // query's estimate 500/10 = 50s > deadline even though blocking-
        // free completion takes only (500+9·50)/100 = 9.5s.
        let mut skew: Vec<QueryState> = vec![state(1, 500.0, 0.0, 10.0)];
        skew.extend((2..=10).map(|i| state(i, 50.0, 0.0, 10.0)));
        let s2 = snap(skew);
        let single = decide_aborts(
            MaintenanceMethod::SinglePi,
            &s2,
            10.0,
            LostWorkCase::TotalCost,
        );
        assert!(single.contains(&1), "single-PI should abort the big query");
        let multi2 = decide_aborts(
            MaintenanceMethod::MultiPi,
            &s2,
            10.0,
            LostWorkCase::TotalCost,
        );
        assert!(
            multi2.is_empty(),
            "multi-PI knows everything finishes in 9.5s"
        );
    }

    #[test]
    fn multi_pi_aborts_minimally_when_deadline_tight() {
        let mut qs = vec![state(1, 800.0, 10.0, 10.0)];
        qs.extend((2..=5).map(|i| state(i, 50.0, 40.0, 10.0)));
        let s = snap(qs);
        // Quiescent = 1000/100 = 10s; deadline 3s ⇒ must shed ≥ 700 units.
        let aborts = decide_aborts(MaintenanceMethod::MultiPi, &s, 3.0, LostWorkCase::TotalCost);
        assert!(aborts.contains(&1));
        assert!(aborts.len() <= 2);
    }

    #[test]
    fn single_pi_stops_once_estimates_fit() {
        // Two queries; aborting the big one doubles the small one's speed.
        let s = snap(vec![
            state(1, 1000.0, 0.0, 50.0),
            state(2, 900.0, 0.0, 50.0),
        ]);
        let aborts = decide_aborts(
            MaintenanceMethod::SinglePi,
            &s,
            10.0,
            LostWorkCase::TotalCost,
        );
        // Initially both estimate 20s and 18s > 10s. Abort Q1 (largest).
        // Q2 then runs at 100: estimate 9s ≤ 10s. Stop.
        assert_eq!(aborts, vec![1]);
    }
}
