//! Scheduled-maintenance abort planning (paper §3.3).
//!
//! At decision time the system runs `n` queries; maintenance starts `t`
//! seconds later. Aborting query `i` shortens the *system quiescent time*
//! (when all kept queries are done) by `V_i = c_i / C` and loses `e_i`
//! (Case 1: completed work) or `e_i + c_i` (Case 2: total cost — the query
//! must be rerun). Choosing the abort set is a knapsack; the paper uses a
//! greedy by ascending `e_i / V_i`, and compares against the exact optimum
//! computed from oracle information ("theoretical limitation", Fig. 11).

use crate::speedup::QueryLoad;

/// How lost work is counted (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum LostWorkCase {
    /// Case 1: lost work = completed work `e_i` of aborted queries.
    CompletedWork,
    /// Case 2: lost work = total cost `e_i + c_i` of aborted queries
    /// (aborted queries must be rerun later).
    TotalCost,
}

impl LostWorkCase {
    /// The loss incurred by aborting `q`.
    pub fn loss(&self, q: &QueryLoad) -> f64 {
        match self {
            LostWorkCase::CompletedWork => q.done,
            LostWorkCase::TotalCost => q.done + q.remaining,
        }
    }
}

/// A maintenance abort plan.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AbortPlan {
    /// Ids to abort now, in abort order.
    pub abort: Vec<u64>,
    /// Predicted quiescent time (seconds from now) after the aborts.
    pub quiescent_after: f64,
    /// Total lost work of the plan, in work units.
    pub lost_work: f64,
}

/// Predicted quiescent time with no aborts: `Σ c_i / C`.
pub fn quiescent_time(queries: &[QueryLoad], rate: f64) -> f64 {
    queries.iter().map(|q| q.remaining).sum::<f64>() / rate
}

/// §3.3 greedy: abort queries in ascending `loss_i / V_i` order until the
/// predicted quiescent time is within the deadline.
pub fn greedy_abort_plan(
    queries: &[QueryLoad],
    rate: f64,
    deadline: f64,
    case: LostWorkCase,
) -> AbortPlan {
    greedy_abort_plan_with_overhead(queries, rate, deadline, case, |_| 0.0)
}

/// Greedy abort planning with non-negligible abort overhead (the paper's
/// §3.3 future-work case): rolling back query `i` costs `overhead(i)` work
/// units that the system must still execute before it quiesces. Aborting
/// `i` therefore saves `V_i = (c_i − o_i)/C`, and queries with `o_i ≥ c_i`
/// are never worth aborting.
pub fn greedy_abort_plan_with_overhead(
    queries: &[QueryLoad],
    rate: f64,
    deadline: f64,
    case: LostWorkCase,
    overhead: impl Fn(&QueryLoad) -> f64,
) -> AbortPlan {
    assert!(rate > 0.0);
    let mut order: Vec<(&QueryLoad, f64)> = queries
        .iter()
        .map(|q| (q, overhead(q).max(0.0)))
        // Only queries whose abort actually saves time are candidates.
        .filter(|(q, o)| q.remaining > *o)
        .collect();
    // Ascending loss per unit of saved time; V_i ∝ (c_i − o_i).
    order.sort_by(|(a, oa), (b, ob)| {
        let ra = case.loss(a) / (a.remaining - oa).max(1e-12);
        let rb = case.loss(b) / (b.remaining - ob).max(1e-12);
        ra.total_cmp(&rb)
    });
    let mut quiescent = quiescent_time(queries, rate);
    let mut abort = Vec::new();
    let mut lost = 0.0;
    for (q, o) in order {
        if quiescent <= deadline {
            break;
        }
        quiescent -= (q.remaining - o) / rate;
        lost += case.loss(q);
        abort.push(q.id);
    }
    AbortPlan {
        abort,
        quiescent_after: quiescent,
        lost_work: lost,
    }
}

/// Observed variant of [`greedy_abort_plan`]: each planned abort is also
/// emitted as a `wlm` trace event with action `maintenance_abort` (one
/// event per aborted query, in abort order), stamped with the caller's
/// virtual time `at`, and counted under `wlm.decisions`.
pub fn greedy_abort_plan_observed(
    queries: &[QueryLoad],
    rate: f64,
    deadline: f64,
    case: LostWorkCase,
    obs: &mqpi_obs::Obs,
    at: f64,
) -> AbortPlan {
    let plan = greedy_abort_plan(queries, rate, deadline, case);
    if obs.is_enabled() {
        for id in &plan.abort {
            crate::speedup::emit_decision(obs, at, "maintenance_abort", Some(*id));
        }
    }
    plan
}

/// Exact optimum by exhaustive subset search (feasible for the paper's
/// `n = 10`; panics above 25 queries). Minimizes lost work subject to the
/// kept queries finishing by the deadline. This is the paper's "theoretical
/// limitation" when fed oracle (run-to-completion) costs.
pub fn optimal_abort_set(
    queries: &[QueryLoad],
    rate: f64,
    deadline: f64,
    case: LostWorkCase,
) -> AbortPlan {
    assert!(rate > 0.0);
    let n = queries.len();
    assert!(n <= 25, "exhaustive search is exponential; n = {n}");
    let budget = rate * deadline; // kept work must fit in this
    let mut best_lost = f64::INFINITY;
    let mut best_mask = 0u32;
    for mask in 0u32..(1u32 << n) {
        // mask bit set = abort.
        let mut kept_cost = 0.0;
        let mut lost = 0.0;
        for (i, q) in queries.iter().enumerate() {
            if mask & (1 << i) != 0 {
                lost += case.loss(q);
            } else {
                kept_cost += q.remaining;
            }
        }
        if kept_cost <= budget + 1e-9 && lost < best_lost {
            best_lost = lost;
            best_mask = mask;
        }
    }
    let abort: Vec<u64> = queries
        .iter()
        .enumerate()
        .filter(|(i, _)| best_mask & (1 << i) != 0)
        .map(|(_, q)| q.id)
        .collect();
    let kept_cost: f64 = queries
        .iter()
        .enumerate()
        .filter(|(i, _)| best_mask & (1 << i) == 0)
        .map(|(_, q)| q.remaining)
        .sum();
    AbortPlan {
        abort,
        quiescent_after: kept_cost / rate,
        lost_work: best_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqpi_sim::rng::Rng;

    fn q(id: u64, done: f64, remaining: f64) -> QueryLoad {
        QueryLoad {
            id,
            remaining,
            done,
            weight: 1.0,
        }
    }

    #[test]
    fn no_aborts_needed_when_deadline_is_generous() {
        let qs = [q(1, 10.0, 100.0), q(2, 5.0, 50.0)];
        let plan = greedy_abort_plan(&qs, 10.0, 100.0, LostWorkCase::CompletedWork);
        assert!(plan.abort.is_empty());
        assert_eq!(plan.lost_work, 0.0);
        assert!((plan.quiescent_after - 15.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_prefers_cheap_loss_per_saved_second() {
        // Q1: lots done, little remaining (bad to abort). Q2: nothing done,
        // lots remaining (free to abort under Case 1).
        let qs = [q(1, 500.0, 50.0), q(2, 0.0, 500.0)];
        let plan = greedy_abort_plan(&qs, 10.0, 10.0, LostWorkCase::CompletedWork);
        assert_eq!(plan.abort, vec![2]);
        assert_eq!(plan.lost_work, 0.0);
        assert!((plan.quiescent_after - 5.0).abs() < 1e-9);
    }

    #[test]
    fn case2_counts_total_cost() {
        let qs = [q(1, 100.0, 100.0), q(2, 0.0, 300.0)];
        let plan = greedy_abort_plan(&qs, 10.0, 15.0, LostWorkCase::TotalCost);
        // Must get kept cost ≤ 150: abort Q2 (ratio (0+300)/300=1) vs Q1
        // (200/100=2): abort Q2 first.
        assert_eq!(plan.abort, vec![2]);
        assert!((plan.lost_work - 300.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_aborts_until_deadline_met() {
        let qs: Vec<QueryLoad> = (1..=5).map(|i| q(i, 0.0, 100.0)).collect();
        // Quiescent = 500/10 = 50s; deadline 25 ⇒ abort until ≤ 25 ⇒ 3 gone.
        let plan = greedy_abort_plan(&qs, 10.0, 25.0, LostWorkCase::CompletedWork);
        assert_eq!(plan.abort.len(), 3);
        assert!(plan.quiescent_after <= 25.0);
    }

    #[test]
    fn optimal_never_worse_than_greedy() {
        let mut rng = Rng::seed_from_u64(21);
        for case in [LostWorkCase::CompletedWork, LostWorkCase::TotalCost] {
            for _ in 0..200 {
                let n = 2 + rng.below(9) as usize;
                let qs: Vec<QueryLoad> = (0..n)
                    .map(|i| {
                        q(
                            i as u64,
                            rng.range_f64(0.0, 500.0),
                            rng.range_f64(1.0, 1000.0),
                        )
                    })
                    .collect();
                let rate = 60.0;
                let deadline = rng.range_f64(0.0, quiescent_time(&qs, rate));
                let g = greedy_abort_plan(&qs, rate, deadline, case);
                let o = optimal_abort_set(&qs, rate, deadline, case);
                assert!(g.quiescent_after <= deadline + 1e-9);
                assert!(o.quiescent_after <= deadline + 1e-9);
                assert!(
                    o.lost_work <= g.lost_work + 1e-9,
                    "optimal {} > greedy {}",
                    o.lost_work,
                    g.lost_work
                );
            }
        }
    }

    #[test]
    fn optimal_is_truly_optimal_on_a_known_instance() {
        // Greedy by ratio can be suboptimal: classic knapsack trap.
        let qs = [q(1, 10.0, 60.0), q(2, 12.0, 50.0), q(3, 30.0, 55.0)];
        // C = 1, deadline 60: keep ≤ 60 units.
        let o = optimal_abort_set(&qs, 1.0, 60.0, LostWorkCase::CompletedWork);
        // Keep Q1 (60) exactly; abort Q2+Q3 loses 42. Alternatives: keep Q2
        // (50) losing 40; keep Q3 losing 22 — optimal keeps Q3.
        assert_eq!(o.abort, vec![1, 2]);
        assert!((o.lost_work - 22.0).abs() < 1e-9);
    }

    #[test]
    fn observed_plan_emits_one_event_per_abort() {
        let obs = mqpi_obs::Obs::enabled();
        let qs: Vec<QueryLoad> = (1..=5).map(|i| q(i, 0.0, 100.0)).collect();
        let plan =
            greedy_abort_plan_observed(&qs, 10.0, 25.0, LostWorkCase::CompletedWork, &obs, 3.0);
        assert_eq!(plan.abort.len(), 3);
        assert_eq!(obs.counter("wlm.decisions"), 3);
        let trace = obs.render_trace();
        assert_eq!(trace.lines().count(), 3);
        for (line, id) in trace.lines().zip(&plan.abort) {
            assert_eq!(line, format!("t=3 wlm action=maintenance_abort id={id}"));
        }
        // Identical plan with observation off.
        let plain = greedy_abort_plan(&qs, 10.0, 25.0, LostWorkCase::CompletedWork);
        assert_eq!(plan, plain);
    }

    #[test]
    fn zero_deadline_aborts_everything_with_positive_cost() {
        let qs = [q(1, 5.0, 10.0), q(2, 3.0, 20.0)];
        let plan = greedy_abort_plan(&qs, 10.0, 0.0, LostWorkCase::CompletedWork);
        assert_eq!(plan.abort.len(), 2);
    }

    #[test]
    fn overhead_aware_plan_skips_expensive_rollbacks() {
        // Q1: 100 remaining but 90 rollback ⇒ aborting saves only 1s at a
        // loss of 10; Q2: 100 remaining, free rollback ⇒ saves 10s for the
        // same loss. The loss/savings ratio puts Q2 first.
        let qs = [q(1, 10.0, 100.0), q(2, 10.0, 100.0)];
        let plan =
            greedy_abort_plan_with_overhead(&qs, 10.0, 12.0, LostWorkCase::CompletedWork, |x| {
                if x.id == 1 {
                    90.0
                } else {
                    0.0
                }
            });
        assert_eq!(plan.abort, vec![2]);
        assert!((plan.quiescent_after - 10.0).abs() < 1e-9);
    }

    #[test]
    fn queries_with_rollback_exceeding_remaining_are_never_aborted() {
        let qs = [q(1, 0.0, 50.0)];
        let plan =
            greedy_abort_plan_with_overhead(&qs, 10.0, 0.0, LostWorkCase::CompletedWork, |_| 60.0);
        assert!(plan.abort.is_empty());
    }

    #[test]
    fn zero_overhead_matches_plain_greedy() {
        let qs: Vec<QueryLoad> = (1..=6)
            .map(|i| q(i, 10.0 * i as f64, 100.0 * (7 - i) as f64))
            .collect();
        let a = greedy_abort_plan(&qs, 20.0, 8.0, LostWorkCase::TotalCost);
        let b = greedy_abort_plan_with_overhead(&qs, 20.0, 8.0, LostWorkCase::TotalCost, |_| 0.0);
        assert_eq!(a, b);
    }
}
