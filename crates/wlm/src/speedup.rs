//! Victim selection for the speed-up problems (paper §3.1–3.2).

use mqpi_sim::system::SystemSnapshot;

/// One running query as workload management sees it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueryLoad {
    /// Query id.
    pub id: u64,
    /// Remaining cost `c` in work units.
    pub remaining: f64,
    /// Work completed `e` in work units.
    pub done: f64,
    /// Scheduling weight `w`.
    pub weight: f64,
}

impl QueryLoad {
    /// Extract the running, unblocked queries from a snapshot.
    pub fn from_snapshot(snap: &SystemSnapshot) -> Vec<QueryLoad> {
        snap.running
            .iter()
            .filter(|q| !q.blocked)
            .map(|q| QueryLoad {
                id: q.id,
                remaining: q.remaining,
                done: q.done,
                weight: q.weight,
            })
            .collect()
    }
}

/// A chosen victim and the predicted benefit of blocking it.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VictimChoice {
    /// The victim query id.
    pub victim: u64,
    /// Predicted reduction of the objective, in seconds.
    pub benefit_seconds: f64,
}

/// §3.1 — single-query speed-up: choose the victim whose blocking shortens
/// the **target** query's remaining time the most.
///
/// With queries sorted by `d = c/w` ascending and the target at position
/// `i`, blocking a victim at position `m` shortens the target by:
///
/// * `T_m = w_m · d_i / C` for `m > i` (the victim outlives the target:
///   condition C1 — pick the heaviest resource consumer);
/// * `T_m = c_m / C` for `m < i` (everything the victim would have done
///   before the target finishes is saved: condition C2 — pick the largest
///   remaining cost).
///
/// `O(n log n)` from the sort; the scan is linear.
///
/// ```
/// use mqpi_wlm::{best_single_victim, QueryLoad};
///
/// let q = |id, remaining| QueryLoad { id, remaining, done: 0.0, weight: 1.0 };
/// // Blocking the almost-finished query (id 2) would save nearly nothing;
/// // the algorithm picks the long-running one instead.
/// let queries = [q(1, 1000.0), q(2, 5.0), q(3, 2000.0)];
/// let choice = best_single_victim(&queries, 1, 100.0).unwrap();
/// assert_eq!(choice.victim, 3);
/// // Benefit = c_target / C: the victim outlives the target, so the whole
/// // fair-share slowdown it caused disappears.
/// assert!((choice.benefit_seconds - 10.0).abs() < 1e-9);
/// ```
pub fn best_single_victim(queries: &[QueryLoad], target: u64, rate: f64) -> Option<VictimChoice> {
    assert!(rate > 0.0);
    let n = queries.len();
    if n < 2 {
        return None;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (queries[a].remaining / queries[a].weight)
            .total_cmp(&(queries[b].remaining / queries[b].weight))
    });
    let ti = order.iter().position(|&k| queries[k].id == target)?;
    let target_q = &queries[order[ti]];
    let d_i = target_q.remaining / target_q.weight;

    let mut best: Option<VictimChoice> = None;
    let mut consider = |id: u64, benefit: f64| {
        if best.map(|b| benefit > b.benefit_seconds).unwrap_or(true) {
            best = Some(VictimChoice {
                victim: id,
                benefit_seconds: benefit,
            });
        }
    };
    // S2: victims that outlive the target.
    for &k in &order[ti + 1..] {
        consider(queries[k].id, queries[k].weight * d_i / rate);
    }
    // S1: victims that would finish before the target.
    for &k in &order[..ti] {
        consider(queries[k].id, queries[k].remaining / rate);
    }
    best
}

/// Observed variant of [`best_single_victim`]: the decision (or the
/// explicit absence of one) is also emitted as a `wlm` trace event with
/// action `speedup_victim`, stamped with the caller's virtual time `at`,
/// and counted under `wlm.decisions`.
pub fn best_single_victim_observed(
    queries: &[QueryLoad],
    target: u64,
    rate: f64,
    obs: &mqpi_obs::Obs,
    at: f64,
) -> Option<VictimChoice> {
    let choice = best_single_victim(queries, target, rate);
    emit_decision(obs, at, "speedup_victim", choice.map(|c| c.victim));
    choice
}

/// Observed variant of [`best_multi_victim`] (action `multi_victim`); see
/// [`best_single_victim_observed`].
pub fn best_multi_victim_observed(
    queries: &[QueryLoad],
    rate: f64,
    obs: &mqpi_obs::Obs,
    at: f64,
) -> Option<VictimChoice> {
    let choice = best_multi_victim(queries, rate);
    emit_decision(obs, at, "multi_victim", choice.map(|c| c.victim));
    choice
}

pub(crate) fn emit_decision(obs: &mqpi_obs::Obs, at: f64, action: &'static str, id: Option<u64>) {
    if obs.is_enabled() {
        obs.emit(at, mqpi_obs::TraceKind::WlmDecision { action, id });
        obs.counter_add("wlm.decisions", 1);
    }
}

/// §3.1 general case — greedily choose `h` victims. Benefits of blocking
/// multiple victims are additive (paper's observation), so the greedy
/// repeats single-victim selection on the shrinking set.
pub fn best_single_victims(
    queries: &[QueryLoad],
    target: u64,
    rate: f64,
    h: usize,
) -> Vec<VictimChoice> {
    let mut pool: Vec<QueryLoad> = queries.to_vec();
    let mut out = Vec::new();
    for _ in 0..h {
        let Some(choice) = best_single_victim(&pool, target, rate) else {
            break;
        };
        pool.retain(|q| q.id != choice.victim);
        out.push(choice);
    }
    out
}

/// §3.1 equal-priority special case in `O(n)`: any query that outlives the
/// target is optimal; if the target finishes last, the victim is the query
/// with the largest remaining cost.
pub fn best_single_victim_equal_priority(
    queries: &[QueryLoad],
    target: u64,
    rate: f64,
) -> Option<VictimChoice> {
    let c_target = queries.iter().find(|q| q.id == target)?.remaining;
    let mut largest_other: Option<&QueryLoad> = None;
    for q in queries.iter().filter(|q| q.id != target) {
        // Any query with remaining ≥ target's outlives it — immediately
        // optimal with benefit c_target/C (= w·d_i/C with w=1).
        if q.remaining >= c_target {
            return Some(VictimChoice {
                victim: q.id,
                benefit_seconds: c_target / rate,
            });
        }
        if largest_other
            .map(|b| q.remaining > b.remaining)
            .unwrap_or(true)
        {
            largest_other = Some(q);
        }
    }
    largest_other.map(|q| VictimChoice {
        victim: q.id,
        benefit_seconds: q.remaining / rate,
    })
}

/// §3.2 — multiple-query speed-up: choose the victim whose blocking most
/// improves the **total response time of all other queries**.
///
/// With queries sorted by `d` ascending, blocking position `m` improves the
/// total by `R_m = (w_m / C) · Σ_{j≤m} (n−j)(d_j − d_{j−1})`; the prefix sum
/// makes the scan linear after the `O(n log n)` sort.
pub fn best_multi_victim(queries: &[QueryLoad], rate: f64) -> Option<VictimChoice> {
    assert!(rate > 0.0);
    let n = queries.len();
    if n < 2 {
        return None;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        (queries[a].remaining / queries[a].weight)
            .total_cmp(&(queries[b].remaining / queries[b].weight))
    });
    let mut best: Option<VictimChoice> = None;
    let mut prefix = 0.0; // Σ_{j≤m} (n−j)(d_j − d_{j−1})
    let mut d_prev = 0.0;
    for (pos, &k) in order.iter().enumerate() {
        let q = &queries[k];
        let d = q.remaining / q.weight;
        // stage index j = pos+1 (1-based); n−j queries benefit per stage.
        prefix += (n - (pos + 1)) as f64 * (d - d_prev);
        d_prev = d;
        let r_m = q.weight * prefix / rate;
        if best.map(|b| r_m > b.benefit_seconds).unwrap_or(true) {
            best = Some(VictimChoice {
                victim: q.id,
                benefit_seconds: r_m,
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use mqpi_core::fluid::{standard_remaining_times, FluidQuery};
    use mqpi_sim::rng::Rng;

    fn q(id: u64, remaining: f64, weight: f64) -> QueryLoad {
        QueryLoad {
            id,
            remaining,
            done: 0.0,
            weight,
        }
    }

    /// Ground truth: target's remaining time via the fluid model.
    fn fluid_target_remaining(queries: &[QueryLoad], target: u64, rate: f64) -> f64 {
        let fqs: Vec<FluidQuery> = queries
            .iter()
            .map(|x| FluidQuery {
                id: x.id,
                cost: x.remaining,
                weight: x.weight,
            })
            .collect();
        let times = standard_remaining_times(&fqs, rate);
        let idx = queries.iter().position(|x| x.id == target).unwrap();
        times[idx]
    }

    /// Ground truth: benefit of blocking `victim` for `target`.
    fn fluid_benefit(queries: &[QueryLoad], target: u64, victim: u64, rate: f64) -> f64 {
        let before = fluid_target_remaining(queries, target, rate);
        let without: Vec<QueryLoad> = queries.iter().filter(|x| x.id != victim).cloned().collect();
        let after = fluid_target_remaining(&without, target, rate);
        before - after
    }

    #[test]
    fn analytic_benefit_matches_fluid_model() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..200 {
            let n = 2 + (rng.below(8) as usize);
            let queries: Vec<QueryLoad> = (0..n)
                .map(|i| {
                    q(
                        i as u64,
                        rng.range_f64(10.0, 2000.0),
                        [0.5, 1.0, 2.0, 4.0][rng.below(4) as usize],
                    )
                })
                .collect();
            let target = rng.below(n as u64);
            let rate = 100.0;
            // Every candidate's analytic benefit must match the fluid model.
            for v in &queries {
                if v.id == target {
                    continue;
                }
                let single = best_single_victim(
                    &queries
                        .iter()
                        .filter(|x| x.id == target || x.id == v.id)
                        .cloned()
                        .collect::<Vec<_>>(),
                    target,
                    rate,
                )
                .unwrap();
                // On the 2-query subproblem the chosen victim must be v and
                // its benefit must match fluid recomputation on the subset.
                assert_eq!(single.victim, v.id);
                let sub: Vec<QueryLoad> = queries
                    .iter()
                    .filter(|x| x.id == target || x.id == v.id)
                    .cloned()
                    .collect();
                let truth = fluid_benefit(&sub, target, v.id, rate);
                assert!(
                    (single.benefit_seconds - truth).abs() < 1e-6,
                    "benefit {} vs fluid {}",
                    single.benefit_seconds,
                    truth
                );
            }
        }
    }

    #[test]
    fn chosen_victim_is_argmax_of_fluid_benefits() {
        let mut rng = Rng::seed_from_u64(12);
        for _ in 0..100 {
            let n = 3 + (rng.below(7) as usize);
            let queries: Vec<QueryLoad> = (0..n)
                .map(|i| {
                    q(
                        i as u64,
                        rng.range_f64(10.0, 2000.0),
                        [0.5, 1.0, 2.0][rng.below(3) as usize],
                    )
                })
                .collect();
            let target = rng.below(n as u64);
            let rate = 60.0;
            let choice = best_single_victim(&queries, target, rate).unwrap();
            let best_truth = queries
                .iter()
                .filter(|v| v.id != target)
                .map(|v| fluid_benefit(&queries, target, v.id, rate))
                .fold(f64::NEG_INFINITY, f64::max);
            let chosen_truth = fluid_benefit(&queries, target, choice.victim, rate);
            assert!(
                chosen_truth >= best_truth - 1e-6,
                "chosen victim benefit {chosen_truth} < optimum {best_truth}"
            );
            assert!(
                (choice.benefit_seconds - chosen_truth).abs() < 1e-6,
                "analytic {} vs fluid {}",
                choice.benefit_seconds,
                chosen_truth
            );
        }
    }

    #[test]
    fn paper_intuition_victim_about_to_finish_is_bad() {
        // Big victim vs tiny victim with the same weight: blocking the
        // almost-finished query saves almost nothing.
        let queries = [q(1, 1000.0, 1.0), q(2, 5.0, 1.0), q(3, 2000.0, 1.0)];
        let choice = best_single_victim(&queries, 1, 100.0).unwrap();
        assert_eq!(choice.victim, 3);
    }

    #[test]
    fn equal_priority_special_case_matches_general() {
        let mut rng = Rng::seed_from_u64(13);
        for _ in 0..100 {
            let n = 2 + (rng.below(8) as usize);
            let queries: Vec<QueryLoad> = (0..n)
                .map(|i| q(i as u64, rng.range_f64(1.0, 500.0), 1.0))
                .collect();
            let target = rng.below(n as u64);
            let g = best_single_victim(&queries, target, 50.0).unwrap();
            let s = best_single_victim_equal_priority(&queries, target, 50.0).unwrap();
            assert!(
                (g.benefit_seconds - s.benefit_seconds).abs() < 1e-9,
                "general {} vs special {}",
                g.benefit_seconds,
                s.benefit_seconds
            );
        }
    }

    #[test]
    fn greedy_h_victims_are_distinct_and_ordered() {
        let queries = [
            q(1, 100.0, 1.0),
            q(2, 400.0, 1.0),
            q(3, 900.0, 1.0),
            q(4, 1600.0, 1.0),
        ];
        let vs = best_single_victims(&queries, 1, 100.0, 3);
        assert_eq!(vs.len(), 3);
        let ids: Vec<u64> = vs.iter().map(|v| v.victim).collect();
        let mut dedup = ids.clone();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
        assert!(!ids.contains(&1));
        // Greedy benefits are non-increasing.
        assert!(vs
            .windows(2)
            .all(|w| w[0].benefit_seconds >= w[1].benefit_seconds - 1e-9));
    }

    /// Ground truth for §3.2: sum of others' completion times via fluid.
    fn fluid_total_response(queries: &[QueryLoad], exclude: u64, rate: f64) -> f64 {
        let kept: Vec<FluidQuery> = queries
            .iter()
            .filter(|x| x.id != exclude)
            .map(|x| FluidQuery {
                id: x.id,
                cost: x.remaining,
                weight: x.weight,
            })
            .collect();
        standard_remaining_times(&kept, rate).iter().sum()
    }

    #[test]
    fn multi_victim_matches_fluid_argmax() {
        let mut rng = Rng::seed_from_u64(14);
        for _ in 0..100 {
            let n = 3 + (rng.below(7) as usize);
            let queries: Vec<QueryLoad> = (0..n)
                .map(|i| {
                    q(
                        i as u64,
                        rng.range_f64(10.0, 1500.0),
                        [0.5, 1.0, 2.0][rng.below(3) as usize],
                    )
                })
                .collect();
            let rate = 80.0;
            let choice = best_multi_victim(&queries, rate).unwrap();
            // Baseline: everyone's total response time with no one blocked,
            // counting only the n−1 queries that survive in each scenario.
            let mut best_improvement = f64::NEG_INFINITY;
            let mut best_id = 0;
            for v in &queries {
                let fqs: Vec<FluidQuery> = queries
                    .iter()
                    .map(|x| FluidQuery {
                        id: x.id,
                        cost: x.remaining,
                        weight: x.weight,
                    })
                    .collect();
                let all_times = standard_remaining_times(&fqs, rate);
                let others_before: f64 = queries
                    .iter()
                    .zip(&all_times)
                    .filter(|(x, _)| x.id != v.id)
                    .map(|(_, t)| *t)
                    .sum();
                let others_after = fluid_total_response(&queries, v.id, rate);
                let imp = others_before - others_after;
                if imp > best_improvement {
                    best_improvement = imp;
                    best_id = v.id;
                }
                if v.id == choice.victim {
                    assert!(
                        (choice.benefit_seconds - imp).abs() < 1e-6,
                        "analytic {} vs fluid {}",
                        choice.benefit_seconds,
                        imp
                    );
                }
            }
            let chosen_imp = {
                let fqs: Vec<FluidQuery> = queries
                    .iter()
                    .map(|x| FluidQuery {
                        id: x.id,
                        cost: x.remaining,
                        weight: x.weight,
                    })
                    .collect();
                let all_times = standard_remaining_times(&fqs, rate);
                let before: f64 = queries
                    .iter()
                    .zip(&all_times)
                    .filter(|(x, _)| x.id != choice.victim)
                    .map(|(_, t)| *t)
                    .sum();
                before - fluid_total_response(&queries, choice.victim, rate)
            };
            assert!(
                chosen_imp >= best_improvement - 1e-6,
                "victim {} improvement {chosen_imp} < best {best_improvement} ({best_id})",
                choice.victim
            );
        }
    }

    #[test]
    fn observed_variants_emit_decisions() {
        let obs = mqpi_obs::Obs::enabled();
        let queries = [q(1, 1000.0, 1.0), q(2, 5.0, 1.0), q(3, 2000.0, 1.0)];
        let choice = best_single_victim_observed(&queries, 1, 100.0, &obs, 7.0).unwrap();
        assert_eq!(choice.victim, 3);
        let multi = best_multi_victim_observed(&queries, 100.0, &obs, 8.0).unwrap();
        // No decision on a too-small set still emits the (absent) outcome.
        assert!(best_single_victim_observed(&queries[..1], 1, 100.0, &obs, 9.0).is_none());
        assert_eq!(obs.counter("wlm.decisions"), 3);
        let trace = obs.render_trace();
        assert_eq!(
            trace,
            format!(
                "t=7 wlm action=speedup_victim id=3\n\
                 t=8 wlm action=multi_victim id={}\n\
                 t=9 wlm action=speedup_victim id=-\n",
                multi.victim
            )
        );
        // Observation never changes the decision.
        assert_eq!(
            best_single_victim(&queries, 1, 100.0),
            best_single_victim_observed(&queries, 1, 100.0, &mqpi_obs::Obs::disabled(), 0.0)
        );
    }

    #[test]
    fn too_few_queries_yield_none() {
        assert!(best_single_victim(&[q(1, 10.0, 1.0)], 1, 10.0).is_none());
        assert!(best_multi_victim(&[q(1, 10.0, 1.0)], 10.0).is_none());
        assert!(best_single_victim(&[], 1, 10.0).is_none());
    }
}
