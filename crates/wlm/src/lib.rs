//! `mqpi-wlm` — PI-driven workload management (paper §3).
//!
//! Three problems, each solved with the information a multi-query PI
//! provides (remaining costs `c_i`, completed work `e_i`, weights `w_i`):
//!
//! * [`speedup::best_single_victim`] — §3.1: which running query to block to
//!   speed up one *target* query the most (plus the greedy `h ≥ 1`
//!   generalization and the `O(n)` equal-priority special case);
//! * [`speedup::best_multi_victim`] — §3.2: which query to block to improve
//!   the *total* response time of all others the most;
//! * [`maintenance`] — §3.3: which queries to abort ahead of scheduled
//!   maintenance at time `t` so the lost work is minimized (greedy knapsack,
//!   the exact oracle optimum used for the paper's "theoretical limitation"
//!   curve, and the three decision policies compared in Fig. 11).

pub mod maintenance;
pub mod policies;
pub mod speedup;

pub use maintenance::{
    greedy_abort_plan, greedy_abort_plan_observed, greedy_abort_plan_with_overhead,
    optimal_abort_set, AbortPlan, LostWorkCase,
};
pub use policies::{decide_aborts, MaintenanceMethod};
pub use speedup::{
    best_multi_victim, best_multi_victim_observed, best_single_victim, best_single_victim_observed,
    best_single_victims, QueryLoad, VictimChoice,
};
