//! Property-based tests for the workload-management algorithms.

use proptest::prelude::*;

use mqpi_wlm::{
    best_multi_victim, best_single_victim, greedy_abort_plan, optimal_abort_set, LostWorkCase,
    QueryLoad,
};

fn arb_loads(max_n: usize) -> impl Strategy<Value = Vec<QueryLoad>> {
    prop::collection::vec(
        (
            0.0f64..2000.0,
            1.0f64..3000.0,
            prop::sample::select(vec![0.5, 1.0, 2.0, 4.0]),
        ),
        2..max_n,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (done, remaining, weight))| QueryLoad {
                id: i as u64,
                remaining,
                done,
                weight,
            })
            .collect()
    })
}

proptest! {
    /// The chosen single-victim benefit is bounded by the victim's own
    /// remaining time (paper §3.1: "no more than r_m can be saved").
    #[test]
    fn benefit_bounded_by_victim_remaining(loads in arb_loads(10), t in 0usize..10) {
        let rate = 60.0;
        let target = loads[t % loads.len()].id;
        if let Some(choice) = best_single_victim(&loads, target, rate) {
            // Victim's remaining execution time in the shared system is at
            // least cost/rate; the bound in the paper is r_m (its remaining
            // *time*), which is ≥ c_m / C.
            let victim = loads.iter().find(|q| q.id == choice.victim).unwrap();
            let total: f64 = loads.iter().map(|q| q.remaining).sum();
            let r_m_upper = total / rate; // last possible finish
            prop_assert!(choice.benefit_seconds <= r_m_upper + 1e-9);
            prop_assert!(choice.benefit_seconds >= 0.0);
            let _ = victim;
        }
    }

    /// Victim selection never picks the target itself.
    #[test]
    fn victim_is_never_the_target(loads in arb_loads(10), t in 0usize..10) {
        let target = loads[t % loads.len()].id;
        if let Some(c) = best_single_victim(&loads, target, 60.0) {
            prop_assert_ne!(c.victim, target);
        }
    }

    /// §3.2: the chosen victim maximizes R_m among all candidates (verified
    /// by brute-force evaluation of the closed form on every candidate).
    #[test]
    fn multi_victim_is_argmax(loads in arb_loads(10)) {
        let rate = 60.0;
        let choice = best_multi_victim(&loads, rate).unwrap();
        // Brute force: blocking m, total response time of others via the
        // fluid model.
        use mqpi_core::fluid::{standard_remaining_times, FluidQuery};
        let all: Vec<FluidQuery> = loads
            .iter()
            .map(|q| FluidQuery { id: q.id, cost: q.remaining, weight: q.weight })
            .collect();
        let base_times = standard_remaining_times(&all, rate);
        let improvement = |victim: u64| -> f64 {
            let others: Vec<FluidQuery> =
                all.iter().filter(|q| q.id != victim).cloned().collect();
            let new_times = standard_remaining_times(&others, rate);
            let before: f64 = all
                .iter()
                .zip(&base_times)
                .filter(|(q, _)| q.id != victim)
                .map(|(_, t)| *t)
                .sum();
            before - new_times.iter().sum::<f64>()
        };
        let best = loads
            .iter()
            .map(|q| improvement(q.id))
            .fold(f64::NEG_INFINITY, f64::max);
        let got = improvement(choice.victim);
        prop_assert!(got >= best - 1e-6, "chosen {} vs best {}", got, best);
    }

    /// The greedy abort plan always meets the deadline and the exact
    /// optimum never loses more work.
    #[test]
    fn greedy_meets_deadline_and_optimal_dominates(
        loads in arb_loads(12),
        frac in 0.0f64..1.0,
        case_sel in 0usize..2,
    ) {
        let rate = 60.0;
        let case = [LostWorkCase::CompletedWork, LostWorkCase::TotalCost][case_sel];
        let quiescent: f64 = loads.iter().map(|q| q.remaining).sum::<f64>() / rate;
        let deadline = frac * quiescent;
        let greedy = greedy_abort_plan(&loads, rate, deadline, case);
        prop_assert!(greedy.quiescent_after <= deadline + 1e-9);
        if loads.len() <= 12 {
            let opt = optimal_abort_set(&loads, rate, deadline, case);
            prop_assert!(opt.quiescent_after <= deadline + 1e-9);
            prop_assert!(opt.lost_work <= greedy.lost_work + 1e-9);
        }
        // Lost work is the sum of losses of the aborted set.
        let recomputed: f64 = loads
            .iter()
            .filter(|q| greedy.abort.contains(&q.id))
            .map(|q| case.loss(q))
            .sum();
        prop_assert!((recomputed - greedy.lost_work).abs() < 1e-9);
    }

    /// Aborting under Case 1 never pays to kill a query with zero work done
    /// before one with lots done *if both shed the same time*.
    #[test]
    fn greedy_prefers_less_sunk_cost(rem in 10.0f64..500.0, d1 in 0.0f64..1.0, d2 in 0.0f64..1.0) {
        prop_assume!((d1 - d2).abs() > 0.05);
        let loads = vec![
            QueryLoad { id: 1, remaining: rem, done: d1 * 1000.0, weight: 1.0 },
            QueryLoad { id: 2, remaining: rem, done: d2 * 1000.0, weight: 1.0 },
        ];
        // Deadline forces exactly one abort.
        let rate = 10.0;
        let deadline = rem / rate * 1.5;
        let plan = greedy_abort_plan(&loads, rate, deadline, LostWorkCase::CompletedWork);
        prop_assert_eq!(plan.abort.len(), 1);
        let expected = if d1 < d2 { 1 } else { 2 };
        prop_assert_eq!(plan.abort[0], expected);
    }
}
