//! `mqpi-ckpt` — versioned, checksummed, byte-stable checkpoint containers.
//!
//! This crate is the dependency-free foundation of the crash-safe
//! checkpoint/restore subsystem. It owns three things:
//!
//! * A tiny binary codec ([`Enc`]/[`Dec`]) with a fixed little-endian wire
//!   format. Floats travel as IEEE-754 bit patterns ([`f64::to_bits`]), so
//!   a round trip is *bit*-exact — the property the deterministic-resume
//!   guarantee is built on.
//! * A file container: `MQPI` magic, format version, a `kind` string naming
//!   the payload schema, the length-prefixed payload, and a trailing CRC-32
//!   over everything before it. [`read_file`] validates all of it and
//!   returns a typed [`CkptError`] instead of panicking, so corrupt,
//!   truncated, or version-mismatched snapshots degrade to a fresh start.
//! * Atomic, durable writes: [`atomic_write`] stages into a sibling temp
//!   file, fsyncs it, renames over the target, and fsyncs the parent
//!   directory, so a crash — including power loss — never leaves a torn
//!   file behind (rename is atomic on POSIX filesystems) and a completed
//!   write is actually on disk. [`sweep_stale_tmp`] collects staging files
//!   orphaned by a crash mid-write.
//!
//! The state encoders themselves live next to the state they snapshot
//! (`sim::System::checkpoint`, `core::InvariantValidator::checkpoint`,
//! `obs::Obs::checkpoint`); this crate knows nothing about them — it only
//! guarantees that what was written is exactly what is read back, or that
//! the mismatch is reported.

use std::fmt;
use std::io;
use std::path::Path;

/// Version stamp of the container layout *and* every payload schema built
/// on top of it. Bump on any wire-format change; readers reject snapshots
/// from other versions (a fresh run is always cheaper than decoding a
/// guess).
///
/// v2: `System` payloads grew a trailing delta-event-feed section, and the
/// PI session service (`mqpi-pi`) introduced its own payload kinds.
///
/// v3: `PiService` payloads grew a WAL-policy section, and the durability
/// layer (`mqpi-wal`) introduced segment and base-snapshot payload kinds.
pub const FORMAT_VERSION: u32 = 3;

/// File magic, first four bytes of every snapshot.
pub const MAGIC: &[u8; 4] = b"MQPI";

/// Why a checkpoint could not be produced or consumed.
#[derive(Debug)]
pub enum CkptError {
    /// The byte stream ended before the decoder got what it needed.
    Truncated,
    /// Structurally invalid data: bad magic, CRC mismatch, impossible
    /// lengths, unknown enum tags.
    Corrupt(String),
    /// The snapshot was written by a different format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The snapshot holds a different payload schema than the caller asked
    /// for (e.g. a `chaos-run` file passed to a trace restorer).
    KindMismatch {
        /// Kind string found in the file.
        found: String,
        /// Kind string the caller expected.
        expected: String,
    },
    /// Filesystem-level failure.
    Io(io::Error),
    /// The live state cannot be snapshotted (e.g. a job backed by a live
    /// engine cursor rather than serializable counters).
    Unsupported(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated => write!(f, "checkpoint truncated"),
            CkptError::Corrupt(why) => write!(f, "checkpoint corrupt: {why}"),
            CkptError::VersionMismatch { found, expected } => {
                write!(f, "checkpoint version {found} (expected {expected})")
            }
            CkptError::KindMismatch { found, expected } => {
                write!(f, "checkpoint kind {found:?} (expected {expected:?})")
            }
            CkptError::Io(e) => write!(f, "checkpoint io: {e}"),
            CkptError::Unsupported(why) => write!(f, "checkpoint unsupported: {why}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, CkptError>;

// ---------------------------------------------------------------------------
// codec
// ---------------------------------------------------------------------------

/// Append-only binary encoder. All integers are little-endian; floats are
/// IEEE-754 bit patterns; strings and byte blobs are `u64` length-prefixed.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Consume the encoder, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (the format is 64-bit regardless of
    /// host width).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append an `f64` as its IEEE-754 bit pattern — bit-exact round trip,
    /// including negative zero, infinities, and NaN payloads.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a length-prefixed byte blob.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Append an optional `f64`: presence tag byte, then the bits.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_f64(x);
            }
            None => self.put_u8(0),
        }
    }

    /// Append an optional `u64`: presence tag byte, then the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
            None => self.put_u8(0),
        }
    }
}

/// Cursor-based decoder over an encoded byte slice. Every getter returns
/// [`CkptError::Truncated`] rather than panicking when the stream runs dry.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor consumed the whole input.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one raw byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a `u64` and narrow it to `usize`, rejecting values that do not
    /// fit the host (only possible on 32-bit hosts reading a hostile file).
    pub fn get_usize(&mut self) -> Result<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CkptError::Corrupt(format!("length {v} overflows usize")))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool byte, rejecting anything but 0/1.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Corrupt(format!("bool byte {b}"))),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_usize()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CkptError::Corrupt("non-utf8 string".into()))
    }

    /// Read a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.get_usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read an optional `f64` written by [`Enc::put_opt_f64`].
    pub fn get_opt_f64(&mut self) -> Result<Option<f64>> {
        Ok(if self.get_bool()? {
            Some(self.get_f64()?)
        } else {
            None
        })
    }

    /// Read an optional `u64` written by [`Enc::put_opt_u64`].
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>> {
        Ok(if self.get_bool()? {
            Some(self.get_u64()?)
        } else {
            None
        })
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, table-driven)
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `data` — the polynomial used by gzip/zip/PNG, so
/// snapshots can be cross-checked with standard tools.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// container
// ---------------------------------------------------------------------------

/// Frame `payload` into the container format: magic, version, kind,
/// length-prefixed payload, CRC-32 of everything prior.
pub fn encode_container(kind: &str, payload: &[u8]) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(MAGIC);
    e.put_u32(FORMAT_VERSION);
    e.put_str(kind);
    e.put_bytes(payload);
    let crc = crc32(&e.buf);
    e.put_u32(crc);
    e.into_bytes()
}

/// Validate a container framed by [`encode_container`] and return its
/// payload. Checks, in order: length, magic, CRC (before trusting any
/// other field), format version, kind.
pub fn decode_container(bytes: &[u8], expected_kind: &str) -> Result<Vec<u8>> {
    if bytes.len() < MAGIC.len() + 4 + 4 {
        return Err(CkptError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(CkptError::Corrupt("bad magic".into()));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let mut a = [0u8; 4];
    a.copy_from_slice(crc_bytes);
    let stored = u32::from_le_bytes(a);
    let computed = crc32(body);
    if stored != computed {
        return Err(CkptError::Corrupt(format!(
            "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    let mut d = Dec::new(&body[4..]);
    let version = d.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(CkptError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let kind = d.get_str()?;
    if kind != expected_kind {
        return Err(CkptError::KindMismatch {
            found: kind,
            expected: expected_kind.to_string(),
        });
    }
    let payload = d.get_bytes()?;
    if !d.is_exhausted() {
        return Err(CkptError::Corrupt(format!(
            "{} trailing bytes after payload",
            d.remaining()
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// atomic file I/O
// ---------------------------------------------------------------------------

/// Write `contents` to `path` atomically *and durably*: stage into a
/// sibling `.tmp` file, fsync it, rename over the target, then fsync the
/// parent directory so the rename itself survives power loss. Readers never
/// observe a torn file — they see either the old contents or the new, and a
/// crash mid-write leaves at worst a stray temp file (collected by
/// [`sweep_stale_tmp`] on the next startup).
pub fn atomic_write(path: &Path, contents: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let mut tmp_name = path
        .file_name()
        .map_or_else(|| "ckpt".into(), |n| n.to_os_string());
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let staged = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        // Data must be on disk *before* the rename publishes the name; a
        // rename alone can be journalled ahead of the data it points at.
        f.sync_all()
    })();
    if let Err(e) = staged {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => {
            sync_parent_dir(path);
            Ok(())
        }
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Fsync the directory containing `path`, making a just-completed rename or
/// unlink durable. Best-effort: directory fsync is a durability upgrade on
/// top of an already-atomic rename, so failures (e.g. filesystems that
/// refuse to open directories) are swallowed rather than failing the write.
pub fn sync_parent_dir(path: &Path) {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    sync_dir(dir);
}

/// Fsync a directory handle itself (entries added/removed/renamed in it).
/// Best-effort, same rationale as [`sync_parent_dir`].
pub fn sync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Remove stale `*.tmp` staging files left in `dir` by a crash mid
/// [`atomic_write`]. Returns how many were removed. Call once at startup
/// before trusting a directory of snapshots; a temp file that was never
/// renamed was by definition never published, so deleting it is always
/// safe.
pub fn sweep_stale_tmp(dir: &Path) -> io::Result<usize> {
    let mut swept = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let is_tmp = Path::new(&name).extension().is_some_and(|e| e == "tmp");
        if is_tmp && entry.file_type()?.is_file() {
            std::fs::remove_file(entry.path())?;
            swept += 1;
        }
    }
    if swept > 0 {
        sync_dir(dir);
    }
    Ok(swept)
}

/// Atomically write `payload` to `path` as a framed, checksummed snapshot.
pub fn write_file(path: &Path, kind: &str, payload: &[u8]) -> Result<()> {
    atomic_write(path, &encode_container(kind, payload))?;
    Ok(())
}

/// Read and validate a snapshot written by [`write_file`], returning its
/// payload. A missing file surfaces as `CkptError::Io` with
/// [`io::ErrorKind::NotFound`] so callers can distinguish "never written"
/// from "written but damaged".
pub fn read_file(path: &Path, kind: &str) -> Result<Vec<u8>> {
    let bytes = std::fs::read(path)?;
    decode_container(&bytes, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload() -> Vec<u8> {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_f64(-0.0);
        e.put_f64(f64::INFINITY);
        e.put_f64(0.1 + 0.2);
        e.put_bool(true);
        e.put_str("héllo");
        e.put_bytes(&[1, 2, 3]);
        e.put_opt_f64(None);
        e.put_opt_f64(Some(1.5));
        e.put_opt_u64(Some(9));
        e.into_bytes()
    }

    #[test]
    fn codec_round_trips_bit_exactly() {
        let bytes = sample_payload();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.get_f64().unwrap(), f64::INFINITY);
        assert_eq!(d.get_f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(d.get_bool().unwrap());
        assert_eq!(d.get_str().unwrap(), "héllo");
        assert_eq!(d.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.get_opt_f64().unwrap(), None);
        assert_eq!(d.get_opt_f64().unwrap(), Some(1.5));
        assert_eq!(d.get_opt_u64().unwrap(), Some(9));
        assert!(d.is_exhausted());
    }

    #[test]
    fn decoder_reports_truncation_not_panic() {
        let bytes = sample_payload();
        let mut d = Dec::new(&bytes[..3]);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert!(matches!(d.get_u32(), Err(CkptError::Truncated)));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn container_round_trips() {
        let framed = encode_container("unit-test", b"payload bytes");
        let payload = decode_container(&framed, "unit-test").unwrap();
        assert_eq!(payload, b"payload bytes");
    }

    #[test]
    fn container_rejects_bit_flip() {
        let mut framed = encode_container("unit-test", b"payload bytes");
        let mid = framed.len() / 2;
        framed[mid] ^= 0x40;
        assert!(matches!(
            decode_container(&framed, "unit-test"),
            Err(CkptError::Corrupt(_))
        ));
    }

    #[test]
    fn container_rejects_truncation() {
        let framed = encode_container("unit-test", b"payload bytes");
        let cut = &framed[..framed.len() - 5];
        // Truncation shears the CRC, so it surfaces as either Truncated or
        // Corrupt — never a panic and never a payload.
        assert!(decode_container(cut, "unit-test").is_err());
        assert!(decode_container(&framed[..6], "unit-test").is_err());
    }

    #[test]
    fn container_rejects_version_mismatch() {
        // Re-frame by hand with a future version and a valid CRC.
        let mut e = Enc::new();
        e.buf.extend_from_slice(MAGIC);
        e.put_u32(FORMAT_VERSION + 1);
        e.put_str("unit-test");
        e.put_bytes(b"payload");
        let crc = crc32(&e.buf);
        e.put_u32(crc);
        let framed = e.into_bytes();
        assert!(matches!(
            decode_container(&framed, "unit-test"),
            Err(CkptError::VersionMismatch { found, expected })
                if found == FORMAT_VERSION + 1 && expected == FORMAT_VERSION
        ));
    }

    #[test]
    fn container_rejects_kind_mismatch() {
        let framed = encode_container("chaos-run", b"payload");
        assert!(matches!(
            decode_container(&framed, "trace-state"),
            Err(CkptError::KindMismatch { found, expected })
                if found == "chaos-run" && expected == "trace-state"
        ));
    }

    #[test]
    fn container_rejects_bad_magic() {
        let mut framed = encode_container("unit-test", b"payload");
        framed[0] = b'X';
        assert!(matches!(
            decode_container(&framed, "unit-test"),
            Err(CkptError::Corrupt(_))
        ));
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("mqpi-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.ckpt");
        write_file(&path, "unit-test", b"abc").unwrap();
        assert_eq!(read_file(&path, "unit-test").unwrap(), b"abc");
        let missing = dir.join("missing.ckpt");
        assert!(matches!(
            read_file(&missing, "unit-test"),
            Err(CkptError::Io(e)) if e.kind() == io::ErrorKind::NotFound
        ));
        // Overwrite goes through the same atomic path.
        write_file(&path, "unit-test", b"def").unwrap();
        assert_eq!(read_file(&path, "unit-test").unwrap(), b"def");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("mqpi-ckpt-tmp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        atomic_write(&path, b"a,b\n1,2\n").unwrap();
        let names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names, vec![std::ffi::OsString::from("out.csv")]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_only_stale_tmp_files() {
        let dir = std::env::temp_dir().join(format!("mqpi-ckpt-sweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("real.ckpt"), b"keep").unwrap();
        std::fs::write(dir.join("real.ckpt.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("other.tmp"), b"torn").unwrap();
        assert_eq!(sweep_stale_tmp(&dir).unwrap(), 2);
        let mut names: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        names.sort();
        assert_eq!(names, vec![std::ffi::OsString::from("real.ckpt")]);
        // Idempotent on a clean directory.
        assert_eq!(sweep_stale_tmp(&dir).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
